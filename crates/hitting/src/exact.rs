//! Exact minimum hitting set by branch and bound.
//!
//! Branches on the not-yet-hit disk with the fewest hitting candidates
//! (fail-first); prunes with the greedy incumbent and a simple
//! disjoint-disk lower bound. Practical up to a few dozen disks, which
//! covers every zone size the paper's scenarios produce.

use crate::greedy::greedy_hitting_set_indices;
use crate::instance::DiskInstance;
use sag_geom::Point;

/// Exact minimum hitting set (points).
///
/// # Example
/// ```
/// use sag_geom::{Circle, Point};
/// use sag_hitting::{exact::exact_hitting_set, DiskInstance};
/// let inst = DiskInstance::new(vec![
///     Circle::new(Point::new(0.0, 0.0), 2.0),
///     Circle::new(Point::new(1.0, 0.0), 2.0),
/// ]);
/// assert_eq!(exact_hitting_set(&inst).len(), 1);
/// ```
pub fn exact_hitting_set(inst: &DiskInstance) -> Vec<Point> {
    exact_hitting_set_indices(inst)
        .into_iter()
        .map(|c| inst.candidates()[c])
        .collect()
}

/// As [`exact_hitting_set`] but returns candidate indices.
pub fn exact_hitting_set_indices(inst: &DiskInstance) -> Vec<usize> {
    let n_disks = inst.len();
    // Candidates worth considering (dominated ones can be dropped safely).
    let cands = inst.non_dominated_candidates();
    // For each disk, the candidates (positions in `cands`) that hit it.
    let mut hitters: Vec<Vec<usize>> = vec![Vec::new(); n_disks];
    for (ci, &c) in cands.iter().enumerate() {
        for &d in inst.hit_by(c) {
            hitters[d].push(ci);
        }
    }
    debug_assert!(
        hitters.iter().all(|h| !h.is_empty()),
        "every disk's own centre hits it, so hitters cannot be empty"
    );

    // Incumbent from greedy.
    let greedy = greedy_hitting_set_indices(inst);
    let mut best_len = greedy.len();
    let mut best: Vec<usize> = greedy;

    // Lower bound: size of a greedily built family of disks with pairwise
    // disjoint hitter sets.
    let disjoint_lower_bound = |unhit: &[usize], used: usize| -> usize {
        let mut blocked = vec![false; cands.len()];
        let mut lb = 0usize;
        for &d in unhit {
            if hitters[d].iter().all(|&c| !blocked[c]) {
                lb += 1;
                for &c in &hitters[d] {
                    blocked[c] = true;
                }
            }
        }
        used + lb
    };

    #[allow(clippy::too_many_arguments)] // recursion state is explicit on purpose
    fn search(
        hit_count: &mut Vec<u32>,
        chosen: &mut Vec<usize>,
        cands: &[usize],
        hitters: &[Vec<usize>],
        cand_pos_hit: &dyn Fn(usize) -> Vec<usize>,
        best_len: &mut usize,
        best: &mut Vec<usize>,
        lb: &dyn Fn(&[usize], usize) -> usize,
    ) {
        let unhit: Vec<usize> = (0..hit_count.len())
            .filter(|&d| hit_count[d] == 0)
            .collect();
        if unhit.is_empty() {
            if chosen.len() < *best_len {
                *best_len = chosen.len();
                *best = chosen.iter().map(|&ci| cands[ci]).collect();
            }
            return;
        }
        if chosen.len() + 1 >= *best_len {
            return; // even one more point cannot beat the incumbent
        }
        if lb(&unhit, chosen.len()) >= *best_len {
            return;
        }
        // Fail-first: branch on the unhit disk with fewest hitters.
        let &d = unhit
            .iter()
            .min_by_key(|&&d| hitters[d].len())
            .expect("unhit is non-empty");
        for &ci in &hitters[d] {
            chosen.push(ci);
            let touched = cand_pos_hit(ci);
            for &t in &touched {
                hit_count[t] += 1;
            }
            search(
                hit_count,
                chosen,
                cands,
                hitters,
                cand_pos_hit,
                best_len,
                best,
                lb,
            );
            for &t in &touched {
                hit_count[t] -= 1;
            }
            chosen.pop();
        }
    }

    let cand_pos_hit = |ci: usize| -> Vec<usize> { inst.hit_by(cands[ci]).to_vec() };
    let mut hit_count = vec![0u32; n_disks];
    let mut chosen = Vec::new();
    search(
        &mut hit_count,
        &mut chosen,
        &cands,
        &hitters,
        &cand_pos_hit,
        &mut best_len,
        &mut best,
        &disjoint_lower_bound,
    );
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_geom::Circle;
    use sag_testkit::prelude::*;

    fn c(x: f64, y: f64, r: f64) -> Circle {
        Circle::new(Point::new(x, y), r)
    }

    #[test]
    fn cluster_needs_one() {
        let inst = DiskInstance::new(vec![c(0.0, 0.0, 2.0), c(1.0, 0.0, 2.0), c(0.0, 1.0, 2.0)]);
        let hs = exact_hitting_set(&inst);
        assert_eq!(hs.len(), 1);
        assert!(inst.is_hitting_set(&hs));
    }

    #[test]
    fn chain_structure() {
        // Disks in a chain where consecutive pairs overlap: optimal hits
        // every other "joint": 3 disks r=1 at 0, 1.8, 3.6 — disk pairs
        // (0,1) and (1,2) overlap, triple doesn't: 2 points? Actually the
        // middle disk overlaps both; one point can hit at most 2 disks
        // (no common triple area), so optimum = 2.
        let inst = DiskInstance::new(vec![c(0.0, 0.0, 1.0), c(1.8, 0.0, 1.0), c(3.6, 0.0, 1.0)]);
        let hs = exact_hitting_set(&inst);
        assert_eq!(hs.len(), 2);
        assert!(inst.is_hitting_set(&hs));
    }

    #[test]
    fn exact_beats_or_ties_greedy() {
        // Classic greedy trap: a large "hub" candidate lures greedy while
        // the optimum uses two spread points. Even if greedy matches,
        // exact must not be worse.
        let inst = DiskInstance::new(vec![
            c(0.0, 0.0, 3.0),
            c(4.0, 0.0, 3.0),
            c(8.0, 0.0, 3.0),
            c(12.0, 0.0, 3.0),
        ]);
        let g = crate::greedy::greedy_hitting_set(&inst);
        let e = exact_hitting_set(&inst);
        assert!(e.len() <= g.len());
        assert!(inst.is_hitting_set(&e));
        assert_eq!(e.len(), 2);
    }

    prop! {
        #[cases(40)]
        fn prop_exact_valid_and_minimal_vs_greedy(seed in 0u64..200, n in 1usize..12) {
            let mut rng = Rng::seed_from_u64(seed);
            let disks: Vec<Circle> = (0..n)
                .map(|_| c(rng.gen_range(-40.0..40.0), rng.gen_range(-40.0..40.0),
                           rng.gen_range(4.0..20.0)))
                .collect();
            let inst = DiskInstance::new(disks);
            let e = exact_hitting_set(&inst);
            prop_assert!(inst.is_hitting_set(&e));
            let g = crate::greedy::greedy_hitting_set(&inst);
            prop_assert!(e.len() <= g.len());
        }

        #[ignore] // exhaustive cross-check, slower; run with --ignored
        #[cases(40)]
        fn prop_exact_matches_brute_force(seed in 0u64..50, n in 1usize..7) {
            let mut rng = Rng::seed_from_u64(seed);
            let disks: Vec<Circle> = (0..n)
                .map(|_| c(rng.gen_range(-20.0..20.0), rng.gen_range(-20.0..20.0),
                           rng.gen_range(3.0..15.0)))
                .collect();
            let inst = DiskInstance::new(disks);
            let e = exact_hitting_set_indices(&inst);
            // Brute force over candidate subsets up to |e| − 1: none may hit all.
            let cands = inst.non_dominated_candidates();
            let k = e.len();
            prop_assume!(cands.len() <= 18);
            let mut found_smaller = false;
            let m = cands.len();
            for mask in 0u32..(1 << m) {
                if (mask.count_ones() as usize) < k {
                    let subset: Vec<usize> = (0..m)
                        .filter(|&i| mask & (1 << i) != 0)
                        .map(|i| cands[i])
                        .collect();
                    if inst.indices_hit_all(&subset) {
                        found_smaller = true;
                        break;
                    }
                }
            }
            prop_assert!(!found_smaller, "exact solver missed a smaller hitting set");
        }
    }
}
