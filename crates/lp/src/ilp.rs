//! Branch-and-bound integer programming over [`LpProblem`] relaxations.
//!
//! Depth-first branch and bound with best-incumbent pruning; variables
//! declared integer are branched on their fractional LP values. Intended
//! for the small exact benchmarks of the reproduction (set-cover style
//! coverage instances with tens of binaries), mirroring how the paper
//! leans on Gurobi only for modest instance sizes.

use crate::budget::Budget;
use crate::error::LpError;
#[cfg(test)]
use crate::problem::Relation;
use crate::problem::{LpProblem, WarmStart};

/// An integer program: an [`LpProblem`] plus a set of integer variables.
///
/// # Example
/// ```
/// use sag_lp::{IlpProblem, LpProblem, Relation};
/// // min x + y  s.t.  2x + y ≥ 3, x,y ∈ {0,1,2,…}
/// let mut lp = LpProblem::minimize(2);
/// lp.set_objective(&[1.0, 1.0]);
/// lp.add_constraint(&[(0, 2.0), (1, 1.0)], Relation::Ge, 3.0);
/// let mut ilp = IlpProblem::new(lp);
/// ilp.set_integer(0);
/// ilp.set_integer(1);
/// let sol = ilp.solve().unwrap();
/// assert!((sol.objective - 2.0).abs() < 1e-9); // x = 1, y = 1  (or x=2,y=0? 2x+y≥3 ⇒ (2,0) costs 2 too)
/// ```
#[derive(Debug, Clone)]
pub struct IlpProblem {
    lp: LpProblem,
    integer: Vec<bool>,
    node_limit: usize,
    budget: Budget,
    warm_start: bool,
}

/// An optimal ILP solution.
#[derive(Debug, Clone)]
pub struct IlpSolution {
    /// Optimal objective value.
    pub objective: f64,
    /// Optimal variable values; integer variables are exact integers.
    pub x: Vec<f64>,
    /// Number of branch-and-bound nodes explored.
    pub nodes: usize,
}

const INT_TOL: f64 = 1e-6;

/// Branch-and-bound work counts, flushed to `sag-obs` once per solve.
#[derive(Default)]
struct BbStats {
    /// Nodes popped and expanded.
    nodes: usize,
    /// Nodes cut by the incumbent bound.
    pruned: usize,
    /// Times the incumbent improved.
    incumbents: usize,
    /// Relaxations solved from a parent basis by the dual simplex.
    warm_starts: usize,
    /// Relaxations solved cold (root, shape change, unusable seed, or
    /// warm starts disabled).
    cold_starts: usize,
}

/// A pending branch-and-bound node: `(var, lo, hi)` bound tightenings
/// applied on top of the base problem, plus the basis the parent
/// relaxation ended on (dual feasible for the child: only bounds
/// changed).
type BbNode = (Vec<(usize, f64, f64)>, Option<WarmStart>);

impl IlpProblem {
    /// Wraps an LP; no variables are integer until marked.
    pub fn new(lp: LpProblem) -> Self {
        let n = lp.num_vars();
        IlpProblem {
            lp,
            integer: vec![false; n],
            node_limit: 200_000,
            budget: Budget::unlimited(),
            warm_start: true,
        }
    }

    /// Enables or disables dual-simplex warm starts of child
    /// relaxations from their parent's basis (on by default; only
    /// effective on the sparse backend). Cold solves are the
    /// differential baseline — `bench_lp` measures the gap.
    pub fn set_warm_start(&mut self, warm: bool) -> &mut Self {
        self.warm_start = warm;
        self
    }

    /// Marks a variable as integer.
    ///
    /// # Panics
    /// Panics if `var` is out of range.
    pub fn set_integer(&mut self, var: usize) -> &mut Self {
        assert!(var < self.integer.len(), "variable {var} out of range");
        self.integer[var] = true;
        self
    }

    /// Marks a variable binary: integer with bounds `[0, 1]`.
    ///
    /// # Panics
    /// Panics if `var` is out of range.
    pub fn set_binary(&mut self, var: usize) -> &mut Self {
        self.lp.set_bounds(var, 0.0, 1.0);
        self.set_integer(var)
    }

    /// Caps the number of branch-and-bound nodes (default 200 000).
    pub fn set_node_limit(&mut self, limit: usize) -> &mut Self {
        self.node_limit = limit;
        self
    }

    /// Attaches a cooperative [`Budget`]: its node cap tightens the
    /// configured node limit, and its deadline / cancellation flag are
    /// polled once per node and inside every relaxation solve.
    pub fn set_budget(&mut self, budget: Budget) -> &mut Self {
        self.budget = budget;
        self
    }

    /// Solves to optimality by branch and bound on the LP relaxation.
    ///
    /// # Errors
    /// [`LpError::Infeasible`] when no integral point exists;
    /// [`LpError::Unbounded`] when the relaxation is unbounded;
    /// [`LpError::NodeLimit`] when the node cap is hit;
    /// [`LpError::Cancelled`] when an attached budget's deadline passes
    /// or its cancellation flag is raised.
    pub fn solve(&self) -> Result<IlpSolution, LpError> {
        let mut stats = BbStats::default();
        let out = self.solve_inner(&mut stats);
        // One flush per solve, even on the error paths.
        if sag_obs::enabled() {
            sag_obs::counter("ilp.nodes", stats.nodes as u64);
            sag_obs::counter("ilp.pruned", stats.pruned as u64);
            sag_obs::counter("ilp.incumbents", stats.incumbents as u64);
            sag_obs::counter("ilp.warm_starts", stats.warm_starts as u64);
            sag_obs::counter("ilp.cold_starts", stats.cold_starts as u64);
            if matches!(out, Err(LpError::NodeLimit | LpError::Cancelled)) {
                sag_obs::counter("ilp.budget_exhausted", 1);
            }
        }
        out
    }

    fn solve_inner(&self, stats: &mut BbStats) -> Result<IlpSolution, LpError> {
        // Maximisation is handled by the LP layer transparently; for
        // pruning we always compare in minimisation sense.
        let sense = if self.lp.is_minimize() { 1.0 } else { -1.0 };
        let node_cap = self
            .budget
            .node_limit()
            .map_or(self.node_limit, |b| b.min(self.node_limit));
        let mut best: Option<(f64, Vec<f64>)> = None; // minimisation sense
        let mut nodes = 0usize;
        let mut stack: Vec<BbNode> = vec![(Vec::new(), None)];
        while let Some((extra, parent_warm)) = stack.pop() {
            nodes += 1;
            stats.nodes = nodes;
            if nodes > node_cap {
                return Err(LpError::NodeLimit);
            }
            self.budget.check_interrupt()?;
            let mut lp = self.lp.clone();
            lp.set_budget(self.budget.clone());
            let mut infeasible_bounds = false;
            for &(v, lo, hi) in &extra {
                let new_lo = lo.max(lp.lower_bound(v));
                let new_hi = hi.min(lp.upper_bound(v));
                if new_lo > new_hi {
                    infeasible_bounds = true;
                    break;
                }
                lp.set_bounds(v, new_lo, new_hi);
            }
            if infeasible_bounds {
                continue;
            }
            let seed = if self.warm_start {
                parent_warm.as_ref()
            } else {
                None
            };
            let (relax, node_warm) = match lp.solve_with_warm_start(seed) {
                Ok(out) => {
                    if out.warm_used {
                        stats.warm_starts += 1;
                    } else {
                        stats.cold_starts += 1;
                    }
                    (out.solution, out.warm)
                }
                Err(LpError::Infeasible) => continue,
                Err(e) => return Err(e),
            };
            let relax_min = sense * relax.objective;
            if let Some((incumbent, _)) = &best {
                // A deeper node can only tighten (increase) the relaxation.
                if relax_min >= *incumbent - 1e-9 {
                    stats.pruned += 1;
                    continue;
                }
            }
            // Find the most fractional integer variable.
            let frac_var = self
                .integer
                .iter()
                .enumerate()
                .filter(|&(_, &is_int)| is_int)
                .map(|(v, _)| (v, (relax.x[v] - relax.x[v].round()).abs()))
                .filter(|&(_, f)| f > INT_TOL)
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite fractions"));
            match frac_var {
                None => {
                    // Integral: candidate incumbent.
                    let mut x = relax.x.clone();
                    for (v, &is_int) in self.integer.iter().enumerate() {
                        if is_int {
                            x[v] = x[v].round();
                        }
                    }
                    let obj_min = sense * relax.objective;
                    if best.as_ref().is_none_or(|(b, _)| obj_min < *b - 1e-12) {
                        best = Some((obj_min, x));
                        stats.incumbents += 1;
                    }
                }
                Some((v, _)) => {
                    let val = relax.x[v];
                    let floor = val.floor();
                    // Branch down: x_v ≤ floor; branch up: x_v ≥ floor+1.
                    let mut down = extra.clone();
                    down.push((v, f64::NEG_INFINITY_SAFE(), floor));
                    let mut up = extra;
                    up.push((v, floor + 1.0, f64::INFINITY));
                    // Both children inherit this node's terminal basis.
                    // Explore the branch nearer the fractional value first.
                    if val - floor < 0.5 {
                        stack.push((up, node_warm.clone()));
                        stack.push((down, node_warm));
                    } else {
                        stack.push((down, node_warm.clone()));
                        stack.push((up, node_warm));
                    }
                }
            }
        }
        match best {
            Some((obj_min, x)) => Ok(IlpSolution {
                objective: sense * obj_min,
                x,
                nodes,
            }),
            None => Err(LpError::Infeasible),
        }
    }
}

/// The LP layer requires finite lower bounds; branching "down" keeps the
/// base lower bound by passing a sentinel that [`IlpProblem::solve`]
/// clamps via `max` with the existing bound.
trait NegInfSafe {
    #[allow(non_snake_case)]
    fn NEG_INFINITY_SAFE() -> f64;
}
impl NegInfSafe for f64 {
    fn NEG_INFINITY_SAFE() -> f64 {
        f64::MIN
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_testkit::prelude::*;

    #[test]
    fn knapsack_binary() {
        // max 10a + 6b + 4c  s.t. a + b + c ≤ 2 (binaries).
        let mut lp = LpProblem::maximize(3);
        lp.set_objective(&[10.0, 6.0, 4.0]);
        lp.add_constraint(&[(0, 1.0), (1, 1.0), (2, 1.0)], Relation::Le, 2.0);
        let mut ilp = IlpProblem::new(lp);
        for v in 0..3 {
            ilp.set_binary(v);
        }
        let s = ilp.solve().unwrap();
        assert!((s.objective - 16.0).abs() < 1e-9);
        assert!((s.x[0] - 1.0).abs() < 1e-9 && (s.x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fractional_relaxation_forced_integral() {
        // min x s.t. 2x ≥ 3, x integer → x = 2 (relaxation gives 1.5).
        let mut lp = LpProblem::minimize(1);
        lp.set_objective(&[1.0]);
        lp.add_constraint(&[(0, 2.0)], Relation::Ge, 3.0);
        let mut ilp = IlpProblem::new(lp);
        ilp.set_integer(0);
        let s = ilp.solve().unwrap();
        assert!((s.x[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn set_cover_exact() {
        // Universe {1,2,3}; sets A={1,2}, B={2,3}, C={3}, D={1}.
        // Optimal cover: {A, B} (2 sets).
        let mut lp = LpProblem::minimize(4);
        lp.set_objective(&[1.0, 1.0, 1.0, 1.0]);
        lp.add_constraint(&[(0, 1.0), (3, 1.0)], Relation::Ge, 1.0); // elt 1
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 1.0); // elt 2
        lp.add_constraint(&[(1, 1.0), (2, 1.0)], Relation::Ge, 1.0); // elt 3
        let mut ilp = IlpProblem::new(lp);
        for v in 0..4 {
            ilp.set_binary(v);
        }
        let s = ilp.solve().unwrap();
        assert!((s.objective - 2.0).abs() < 1e-9);
        // Verify the returned selection really covers all three elements
        // (several 2-set optima exist, e.g. {A,B} or {B,D}).
        let picked: Vec<usize> = (0..4).filter(|&v| s.x[v] > 0.5).collect();
        assert_eq!(picked.len(), 2);
        let covers = [vec![1, 2], vec![2, 3], vec![3], vec![1]];
        let mut covered: std::collections::HashSet<usize> = Default::default();
        for &p in &picked {
            covered.extend(covers[p].iter().copied());
        }
        assert_eq!(covered.len(), 3);
    }

    #[test]
    fn mixed_integer_continuous() {
        // min y  s.t. y ≥ x − 0.5, x ≥ 1.3, x integer, y continuous.
        let mut lp = LpProblem::minimize(2);
        lp.set_objective(&[0.0, 1.0]);
        lp.add_constraint(&[(1, 1.0), (0, -1.0)], Relation::Ge, -0.5);
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, 1.3);
        lp.set_bounds(0, 0.0, 10.0);
        let mut ilp = IlpProblem::new(lp);
        ilp.set_integer(0);
        let s = ilp.solve().unwrap();
        assert!((s.x[0] - 2.0).abs() < 1e-9);
        assert!((s.x[1] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn infeasible_integrality() {
        // 0.4 ≤ x ≤ 0.6, x integer: no integral point.
        let mut lp = LpProblem::minimize(1);
        lp.set_objective(&[1.0]);
        lp.set_bounds(0, 0.4, 0.6);
        let mut ilp = IlpProblem::new(lp);
        ilp.set_integer(0);
        assert_eq!(ilp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn pure_lp_passthrough() {
        // No integer variables: ILP == LP.
        let mut lp = LpProblem::minimize(1);
        lp.set_objective(&[1.0]);
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, 1.5);
        let s = IlpProblem::new(lp).solve().unwrap();
        assert!((s.x[0] - 1.5).abs() < 1e-9);
        assert_eq!(s.nodes, 1);
    }

    #[test]
    fn node_limit_respected() {
        let mut lp = LpProblem::minimize(1);
        lp.set_objective(&[1.0]);
        lp.set_bounds(0, 0.4, 0.6);
        let mut ilp = IlpProblem::new(lp);
        ilp.set_integer(0);
        ilp.set_node_limit(0);
        assert_eq!(ilp.solve().unwrap_err(), LpError::NodeLimit);
    }

    #[test]
    fn budget_node_cap_tightens_node_limit() {
        let mut lp = LpProblem::minimize(1);
        lp.set_objective(&[1.0]);
        lp.set_bounds(0, 0.4, 0.6);
        let mut ilp = IlpProblem::new(lp);
        ilp.set_integer(0);
        ilp.set_budget(Budget::unlimited().with_node_limit(0));
        assert_eq!(ilp.solve().unwrap_err(), LpError::NodeLimit);
    }

    #[test]
    fn expired_budget_deadline_cancels() {
        let mut lp = LpProblem::minimize(1);
        lp.set_objective(&[1.0]);
        lp.add_constraint(&[(0, 2.0)], Relation::Ge, 3.0);
        let mut ilp = IlpProblem::new(lp);
        ilp.set_integer(0);
        ilp.set_budget(Budget::unlimited().with_deadline(std::time::Duration::ZERO));
        assert_eq!(ilp.solve().unwrap_err(), LpError::Cancelled);
    }

    /// Brute-force checker for random binary set-cover instances.
    fn brute_cover(costs: &[f64], covers: &[Vec<usize>], n_elts: usize) -> Option<f64> {
        let n = costs.len();
        let mut best: Option<f64> = None;
        for mask in 0u32..(1 << n) {
            let mut covered = vec![false; n_elts];
            let mut cost = 0.0;
            for s in 0..n {
                if mask & (1 << s) != 0 {
                    cost += costs[s];
                    for &e in &covers[s] {
                        covered[e] = true;
                    }
                }
            }
            if covered.iter().all(|&c| c) && best.is_none_or(|b| cost < b) {
                best = Some(cost);
            }
        }
        best
    }

    prop! {
        fn prop_matches_brute_force_set_cover(seed in 0u64..150) {
            let mut rng = Rng::seed_from_u64(seed);
            let n_sets = rng.gen_range(2..7usize);
            let n_elts = rng.gen_range(1..6usize);
            let costs: Vec<f64> = (0..n_sets).map(|_| rng.gen_range(1.0..5.0)).collect();
            let covers: Vec<Vec<usize>> = (0..n_sets)
                .map(|_| (0..n_elts).filter(|_| rng.gen_bool(0.5)).collect())
                .collect();
            let mut lp = LpProblem::minimize(n_sets);
            lp.set_objective(&costs);
            let mut rows_ok = true;
            for e in 0..n_elts {
                let row: Vec<(usize, f64)> = (0..n_sets)
                    .filter(|&s| covers[s].contains(&e))
                    .map(|s| (s, 1.0))
                    .collect();
                if row.is_empty() {
                    rows_ok = false; // element uncoverable
                    break;
                }
                lp.add_constraint(&row, Relation::Ge, 1.0);
            }
            prop_assume!(rows_ok);
            let mut ilp = IlpProblem::new(lp);
            for v in 0..n_sets {
                ilp.set_binary(v);
            }
            let got = ilp.solve().unwrap();
            let want = brute_cover(&costs, &covers, n_elts).unwrap();
            prop_assert!((got.objective - want).abs() < 1e-6,
                "ilp {} vs brute {}", got.objective, want);
        }
    }
}
