//! The LP backend switch: sparse revised simplex by default, the dense
//! two-phase tableau as a differential oracle.
//!
//! Mirrors the interference ledger's oracle pattern
//! (`SAG_SNR_ORACLE`): the environment variable `SAG_LP_ORACLE=1`
//! routes every [`crate::LpProblem::solve`] through the dense core,
//! read once per process; tests install scoped, thread-local overrides
//! via [`push_backend_override`] so differential rigs can pin each side
//! explicitly without racing parallel tests.

use std::cell::Cell;
use std::sync::OnceLock;

/// Which numerical core solves lowered LPs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpBackend {
    /// The sparse revised simplex ([`crate::revised`]) — the default.
    Sparse,
    /// The dense two-phase tableau ([`crate::simplex`]) — the
    /// differential oracle, selected process-wide by `SAG_LP_ORACLE=1`.
    Dense,
}

thread_local! {
    /// Scoped override installed by [`push_backend_override`];
    /// thread-local so concurrent tests cannot race each other.
    static BACKEND_OVERRIDE: Cell<Option<LpBackend>> = const { Cell::new(None) };
}

/// The environment's backend: dense when `SAG_LP_ORACLE=1`, sparse
/// otherwise. Read once per process — never a per-solve `env::var`.
fn env_backend() -> LpBackend {
    static BACKEND: OnceLock<LpBackend> = OnceLock::new();
    *BACKEND.get_or_init(|| {
        if std::env::var("SAG_LP_ORACLE").is_ok_and(|v| v == "1") {
            LpBackend::Dense
        } else {
            LpBackend::Sparse
        }
    })
}

/// The backend solves run with: the scoped override when one is
/// installed, the cached `SAG_LP_ORACLE` environment switch otherwise.
pub fn backend() -> LpBackend {
    BACKEND_OVERRIDE.with(Cell::get).unwrap_or_else(env_backend)
}

/// Installs a scoped backend override on this thread; the previous
/// value is restored when the returned guard drops. `None` clears any
/// outer override back to the environment default for the scope.
pub fn push_backend_override(backend: Option<LpBackend>) -> BackendGuard {
    let previous = BACKEND_OVERRIDE.with(|c| c.replace(backend));
    BackendGuard { previous }
}

/// Restores the previous backend override on drop (returned by
/// [`push_backend_override`]).
pub struct BackendGuard {
    previous: Option<LpBackend>,
}

impl Drop for BackendGuard {
    fn drop(&mut self) {
        BACKEND_OVERRIDE.with(|c| c.set(self.previous));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_scopes_and_restores() {
        let outer = backend();
        {
            let _g = push_backend_override(Some(LpBackend::Dense));
            assert_eq!(backend(), LpBackend::Dense);
            {
                let _g2 = push_backend_override(Some(LpBackend::Sparse));
                assert_eq!(backend(), LpBackend::Sparse);
            }
            assert_eq!(backend(), LpBackend::Dense);
        }
        assert_eq!(backend(), outer);
    }
}
