//! User-facing LP modelling: sparse rows, ≤/≥/=, variable bounds.
//!
//! [`LpProblem`] lowers itself to equality standard form for one of two
//! backends (see [`crate::backend`]): the sparse revised simplex
//! ([`crate::revised`], the default) or the dense two-phase tableau
//! ([`crate::simplex`], the differential oracle). Both lowerings shift
//! variables by their lower bounds, turn finite upper bounds into extra
//! `≤` rows, and give inequality rows slack/surplus columns. They
//! differ in one deliberate way: the dense core requires `b ≥ 0`, so
//! its lowering negates rows — the sparse core accepts any-sign `b`,
//! keeping the lowered matrix *identical* across bound changes so
//! branch-and-bound children can warm-start from a parent basis
//! ([`LpProblem::solve_with_warm_start`]).

// Building dense rows/columns is index arithmetic by nature.
#![allow(clippy::needless_range_loop)]

use crate::backend::{backend, LpBackend};
use crate::budget::Budget;
use crate::error::LpError;
use crate::revised::{solve_sparse_from_basis, solve_sparse_with, SparseStandardForm};
use crate::simplex::{solve_standard_with, StandardForm};
use crate::sparse::CscMatrix;

/// Relation of a linear constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `≤ rhs`
    Le,
    /// `≥ rhs`
    Ge,
    /// `= rhs`
    Eq,
}

#[derive(Debug, Clone)]
struct Row {
    coeffs: Vec<(usize, f64)>,
    rel: Relation,
    rhs: f64,
}

/// A linear program in natural (modeller's) form.
///
/// Variables are indexed `0..n`; default bounds are `[0, +inf)`.
///
/// # Example
/// ```
/// use sag_lp::{LpProblem, Relation};
/// // max x + y  s.t.  x ≤ 1, y ≤ 2   (as min of the negation)
/// let mut lp = LpProblem::maximize(2);
/// lp.set_objective(&[1.0, 1.0]);
/// lp.add_constraint(&[(0, 1.0)], Relation::Le, 1.0);
/// lp.add_constraint(&[(1, 1.0)], Relation::Le, 2.0);
/// let sol = lp.solve().unwrap();
/// assert!((sol.objective - 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct LpProblem {
    n: usize,
    minimize: bool,
    objective: Vec<f64>,
    rows: Vec<Row>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    budget: Budget,
}

/// An optimal LP solution.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// The optimal objective value, in the problem's own sense
    /// (maximisation problems report the maximum).
    pub objective: f64,
    /// Optimal variable values.
    pub x: Vec<f64>,
}

/// An optimal LP solution with sensitivity information.
#[derive(Debug, Clone)]
pub struct LpSolutionDetailed {
    /// The optimal objective value, in the problem's own sense.
    pub objective: f64,
    /// Optimal variable values.
    pub x: Vec<f64>,
    /// Shadow price of each *inequality* constraint row, in input order:
    /// the derivative of the optimal objective with respect to that
    /// row's right-hand side. `None` for equality rows (their duals are
    /// not recovered by this solver).
    pub duals: Vec<Option<f64>>,
    /// Reduced cost of each variable in the internal minimisation sense
    /// (zero for basic variables).
    pub reduced_costs: Vec<f64>,
}

/// The structural signature of a sparse lowering: row/column counts
/// plus the set of finite-upper-bound variables. Two problems share a
/// shape exactly when they differ only in bound *values* and right-hand
/// sides — the condition under which a basis from one is dual feasible
/// for the other.
#[derive(Debug, Clone, PartialEq, Eq)]
struct LoweredShape {
    m: usize,
    total: usize,
    n: usize,
    ub_vars: Vec<usize>,
}

/// An opaque warm-start handle: the terminal basis of a sparse solve
/// plus the shape it belongs to. Obtained from
/// [`LpProblem::solve_with_warm_start`] and fed back into a later solve
/// of a same-shaped problem (e.g. a branch-and-bound child).
#[derive(Debug, Clone)]
pub struct WarmStart {
    basis: Vec<usize>,
    shape: LoweredShape,
}

/// Result of [`LpProblem::solve_with_warm_start`].
#[derive(Debug, Clone)]
pub struct WarmOutcome {
    /// The optimal solution.
    pub solution: LpSolution,
    /// Warm-start handle for a subsequent same-shaped solve; `None`
    /// under the dense oracle backend or when the terminal basis cannot
    /// seed one (it kept an artificial for a redundant row).
    pub warm: Option<WarmStart>,
    /// Whether the provided seed basis was actually used (shape
    /// matched and the dual simplex accepted it).
    pub warm_used: bool,
}

/// Internal detailed variant of [`WarmOutcome`].
struct SparseOutcome {
    solution: LpSolutionDetailed,
    warm: Option<WarmStart>,
    warm_used: bool,
}

impl LpProblem {
    /// Creates a minimisation problem with `n` variables (zero objective).
    pub fn minimize(n: usize) -> Self {
        LpProblem {
            n,
            minimize: true,
            objective: vec![0.0; n],
            rows: Vec::new(),
            lower: vec![0.0; n],
            upper: vec![f64::INFINITY; n],
            budget: Budget::unlimited(),
        }
    }

    /// Creates a maximisation problem with `n` variables (zero objective).
    pub fn maximize(n: usize) -> Self {
        let mut p = Self::minimize(n);
        p.minimize = false;
        p
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Number of constraint rows.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Sets the full objective vector.
    ///
    /// # Panics
    /// Panics if `coeffs.len() != num_vars()` or any coefficient is not
    /// finite.
    pub fn set_objective(&mut self, coeffs: &[f64]) -> &mut Self {
        assert_eq!(coeffs.len(), self.n, "objective length mismatch");
        assert!(
            coeffs.iter().all(|c| c.is_finite()),
            "objective must be finite"
        );
        self.objective.copy_from_slice(coeffs);
        self
    }

    /// Sets a single objective coefficient.
    ///
    /// # Panics
    /// Panics if `var` is out of range or `coeff` is not finite.
    pub fn set_objective_coeff(&mut self, var: usize, coeff: f64) -> &mut Self {
        assert!(var < self.n, "variable {var} out of range");
        assert!(coeff.is_finite(), "objective coefficient must be finite");
        self.objective[var] = coeff;
        self
    }

    /// Adds a sparse constraint `Σ coeff·x rel rhs`.
    ///
    /// # Panics
    /// Panics if a variable index is out of range or a value is not
    /// finite.
    pub fn add_constraint(
        &mut self,
        coeffs: &[(usize, f64)],
        rel: Relation,
        rhs: f64,
    ) -> &mut Self {
        for &(v, c) in coeffs {
            assert!(
                v < self.n,
                "constraint references variable {v}, have {}",
                self.n
            );
            assert!(c.is_finite(), "constraint coefficient must be finite");
        }
        assert!(rhs.is_finite(), "rhs must be finite");
        self.rows.push(Row {
            coeffs: coeffs.to_vec(),
            rel,
            rhs,
        });
        self
    }

    /// Sets bounds `lo ≤ x_var ≤ hi` (either side may be infinite; `lo`
    /// must be finite for this solver).
    ///
    /// # Panics
    /// Panics if `var` out of range, `lo` not finite, `lo > hi`, or `hi`
    /// is NaN.
    pub fn set_bounds(&mut self, var: usize, lo: f64, hi: f64) -> &mut Self {
        assert!(var < self.n, "variable {var} out of range");
        assert!(lo.is_finite(), "lower bound must be finite (got {lo})");
        assert!(!hi.is_nan() && lo <= hi, "invalid bounds [{lo}, {hi}]");
        self.lower[var] = lo;
        self.upper[var] = hi;
        self
    }

    /// Attaches a cooperative [`Budget`] (deadline / cancellation flag)
    /// polled by the simplex core during [`LpProblem::solve`].
    pub fn set_budget(&mut self, budget: Budget) -> &mut Self {
        self.budget = budget;
        self
    }

    /// Solves the problem.
    ///
    /// # Errors
    /// [`LpError::Infeasible`] / [`LpError::Unbounded`] /
    /// [`LpError::IterationLimit`] from the simplex core, and
    /// [`LpError::Cancelled`] when an attached budget trips.
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        let d = self.solve_detailed()?;
        Ok(LpSolution {
            objective: d.objective,
            x: d.x,
        })
    }

    /// Solves the problem and additionally recovers shadow prices
    /// (inequality-row duals) and reduced costs.
    ///
    /// Strong duality is property-tested: on an optimal solution,
    /// `objective == Σ duals_i · rhs_i + Σ bound contributions` for the
    /// tight rows. Equality-row duals are reported as `None`.
    ///
    /// Routed through the active [`crate::backend::LpBackend`]: the
    /// sparse revised simplex by default, the dense tableau under
    /// `SAG_LP_ORACLE=1` or a scoped override.
    ///
    /// # Errors
    /// As [`LpProblem::solve`].
    pub fn solve_detailed(&self) -> Result<LpSolutionDetailed, LpError> {
        match backend() {
            LpBackend::Dense => self.solve_detailed_dense(),
            LpBackend::Sparse => self.solve_sparse_outcome(None).map(|o| o.solution),
        }
    }

    /// The dense-tableau lowering and solve (the differential oracle).
    fn solve_detailed_dense(&self) -> Result<LpSolutionDetailed, LpError> {
        // Shift x = lower + x'. Build rows over x' ≥ 0.
        let n = self.n;
        let mut rows: Vec<(Vec<f64>, Relation, f64)> = Vec::new();
        let mut row_scales: Vec<f64> = Vec::with_capacity(self.rows.len());
        for row in &self.rows {
            let mut dense = vec![0.0; n];
            let mut shift = 0.0;
            for &(v, c) in &row.coeffs {
                dense[v] += c;
                shift += c * self.lower[v];
            }
            let mut rhs = row.rhs - shift;
            // Equilibrate: physical models (e.g. path-loss gains) mix
            // coefficient magnitudes across ~15 orders; normalising each
            // row by its largest coefficient keeps the tableau pivots
            // well-scaled.
            let scale = dense.iter().fold(0.0f64, |m, c| m.max(c.abs()));
            if scale > 0.0 {
                for c in dense.iter_mut() {
                    *c /= scale;
                }
                rhs /= scale;
            }
            row_scales.push(if scale > 0.0 { scale } else { 1.0 });
            rows.push((dense, row.rel, rhs));
        }
        // Finite upper bounds become x'_v ≤ hi − lo.
        for v in 0..n {
            if self.upper[v].is_finite() {
                let mut dense = vec![0.0; n];
                dense[v] = 1.0;
                rows.push((dense, Relation::Le, self.upper[v] - self.lower[v]));
            }
        }

        // Count slack columns.
        let n_slack = rows
            .iter()
            .filter(|(_, rel, _)| *rel != Relation::Eq)
            .count();
        let total = n + n_slack;
        let mut a: Vec<Vec<f64>> = Vec::with_capacity(rows.len());
        let mut b: Vec<f64> = Vec::with_capacity(rows.len());
        let mut slack_idx = n;
        // (slack column, relation, negated) per row — user rows first,
        // then the synthesised upper-bound rows; only the user rows feed
        // the dual recovery.
        let mut row_meta: Vec<(Option<usize>, Relation, bool)> = Vec::with_capacity(rows.len());
        for (dense, rel, rhs) in rows {
            let mut full = vec![0.0; total];
            full[..n].copy_from_slice(&dense);
            let mut rhs = rhs;
            let slack_col = match rel {
                Relation::Le => {
                    full[slack_idx] = 1.0;
                    slack_idx += 1;
                    Some(slack_idx - 1)
                }
                Relation::Ge => {
                    full[slack_idx] = -1.0;
                    slack_idx += 1;
                    Some(slack_idx - 1)
                }
                Relation::Eq => None,
            };
            let mut negated = false;
            if rhs < 0.0 {
                for c in full.iter_mut() {
                    *c = -*c;
                }
                rhs = -rhs;
                negated = true;
            }
            row_meta.push((slack_col, rel, negated));
            a.push(full);
            b.push(rhs);
        }

        let mut c = vec![0.0; total];
        for v in 0..n {
            c[v] = if self.minimize {
                self.objective[v]
            } else {
                -self.objective[v]
            };
        }

        let sol = solve_standard_with(&StandardForm { a, b, c }, &self.budget)?;
        let x: Vec<f64> = (0..n).map(|v| sol.x[v] + self.lower[v]).collect();
        let objective: f64 = self.objective.iter().zip(&x).map(|(c, v)| c * v).sum();

        // Dual recovery for the user's inequality rows: the reduced cost
        // of a row's slack/surplus column encodes its dual in the
        // internal minimisation. A Ge surplus (−1 coefficient) yields
        // rc = +y; a Le slack (+1) yields rc = −y; row negation flips the
        // coefficient and hence the sign; row scaling by k makes the
        // recovered dual k-times the user row's (y_user = y_scaled / k);
        // maximisation flips once more so the reported value is always
        // dObjective/d rhs in the problem's own sense.
        let sense = if self.minimize { 1.0 } else { -1.0 };
        let duals: Vec<Option<f64>> = self
            .rows
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let (slack_col, rel, negated) = row_meta[i];
                let col = slack_col?;
                let rc = sol.reduced_costs[col];
                let mut y = match rel {
                    Relation::Ge => rc,
                    Relation::Le => -rc,
                    Relation::Eq => unreachable!("Eq rows have no slack"),
                };
                if negated {
                    y = -y;
                }
                Some(sense * y / row_scales[i])
            })
            .collect();

        Ok(LpSolutionDetailed {
            objective,
            x,
            duals,
            reduced_costs: sol.reduced_costs[..n].to_vec(),
        })
    }

    /// Bulk-adds one constraint per row of a CSC-assembled block:
    /// `block` is an `r × num_vars()` matrix and each of its rows
    /// becomes `Σ block[i,·]·x rel rhs`. This is the assembly path the
    /// ILPQC coverage rows use — triplets go straight into a canonical
    /// [`CscMatrix`] (duplicates summed, zeros dropped) instead of
    /// per-row pushes.
    ///
    /// # Panics
    /// Panics if `block.ncols() != num_vars()` or `rhs` is not finite.
    pub fn add_rows_from_csc(&mut self, block: &CscMatrix, rel: Relation, rhs: f64) -> &mut Self {
        assert_eq!(
            block.ncols(),
            self.n,
            "block has {} columns, problem has {} variables",
            block.ncols(),
            self.n
        );
        assert!(rhs.is_finite(), "rhs must be finite");
        for coeffs in block.to_rows() {
            self.rows.push(Row { coeffs, rel, rhs });
        }
        self
    }

    /// Lowers to the any-sign-rhs sparse standard form. Row order and
    /// scaling mirror the dense lowering exactly — minus the rhs
    /// negation, so the matrix (and hence [`LoweredShape`]) depends only
    /// on the constraint structure, never on bound values.
    fn lower_sparse(
        &self,
    ) -> (
        SparseStandardForm,
        Vec<f64>,
        Vec<Option<usize>>,
        LoweredShape,
    ) {
        let n = self.n;
        let m_user = self.rows.len();
        let ub_vars: Vec<usize> = (0..n).filter(|&v| self.upper[v].is_finite()).collect();
        let m = m_user + ub_vars.len();
        let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
        let mut b: Vec<f64> = Vec::with_capacity(m);
        let mut row_scales: Vec<f64> = Vec::with_capacity(m_user);
        for (i, row) in self.rows.iter().enumerate() {
            // Combine duplicate variable references, as the dense
            // lowering's scatter-add does.
            let mut combined: Vec<(usize, f64)> = row.coeffs.clone();
            combined.sort_by_key(|&(v, _)| v);
            combined.dedup_by(|next, acc| {
                if next.0 == acc.0 {
                    acc.1 += next.1;
                    true
                } else {
                    false
                }
            });
            let shift: f64 = combined.iter().map(|&(v, c)| c * self.lower[v]).sum();
            let scale = combined.iter().fold(0.0f64, |mx, &(_, c)| mx.max(c.abs()));
            let scale = if scale > 0.0 { scale } else { 1.0 };
            for &(v, c) in &combined {
                triplets.push((i, v, c / scale));
            }
            b.push((row.rhs - shift) / scale);
            row_scales.push(scale);
        }
        for (idx, &v) in ub_vars.iter().enumerate() {
            triplets.push((m_user + idx, v, 1.0));
            b.push(self.upper[v] - self.lower[v]);
        }
        // Slack/surplus columns in row order: user rows by relation,
        // then a `+1` slack for every synthesised upper-bound row.
        let n_slack = self.rows.iter().filter(|r| r.rel != Relation::Eq).count() + ub_vars.len();
        let total = n + n_slack;
        let mut slack_idx = n;
        let mut slack_cols: Vec<Option<usize>> = Vec::with_capacity(m_user);
        for (i, row) in self.rows.iter().enumerate() {
            let sign = match row.rel {
                Relation::Le => 1.0,
                Relation::Ge => -1.0,
                Relation::Eq => {
                    slack_cols.push(None);
                    continue;
                }
            };
            triplets.push((i, slack_idx, sign));
            slack_cols.push(Some(slack_idx));
            slack_idx += 1;
        }
        for idx in 0..ub_vars.len() {
            triplets.push((m_user + idx, slack_idx, 1.0));
            slack_idx += 1;
        }
        let mut c = vec![0.0; total];
        for v in 0..n {
            c[v] = if self.minimize {
                self.objective[v]
            } else {
                -self.objective[v]
            };
        }
        let a = CscMatrix::from_triplets(m, total, &triplets)
            .expect("lowering emits in-range, finite triplets");
        let shape = LoweredShape {
            m,
            total,
            n,
            ub_vars,
        };
        (
            SparseStandardForm { a, b, c },
            row_scales,
            slack_cols,
            shape,
        )
    }

    /// Solves via the sparse revised simplex, optionally warm-starting
    /// the dual simplex from `warm` (ignored unless its
    /// [`LoweredShape`] matches; an unusable seed falls back to a cold
    /// solve). Returns the detailed solution plus the terminal basis
    /// for future warm starts.
    fn solve_sparse_outcome(&self, warm: Option<&WarmStart>) -> Result<SparseOutcome, LpError> {
        let (sf, row_scales, slack_cols, shape) = self.lower_sparse();
        let mut warm_used = false;
        let sol = match warm {
            Some(ws) if ws.shape == shape => {
                match solve_sparse_from_basis(&sf, &ws.basis, &self.budget) {
                    Ok(s) => {
                        warm_used = true;
                        s
                    }
                    // An unusable seed basis is not an answer — retry
                    // cold. Anything else (Infeasible, Cancelled, …) is
                    // a real outcome and propagates.
                    Err(LpError::Numerical(_)) => solve_sparse_with(&sf, &self.budget)?,
                    Err(e) => return Err(e),
                }
            }
            _ => solve_sparse_with(&sf, &self.budget)?,
        };
        let n = self.n;
        let x: Vec<f64> = (0..n).map(|v| sol.x[v] + self.lower[v]).collect();
        let objective: f64 = self.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
        // Dual recovery as in the dense path, minus the negation term
        // (sparse rows are never negated).
        let sense = if self.minimize { 1.0 } else { -1.0 };
        let duals: Vec<Option<f64>> = (0..self.rows.len())
            .map(|i| {
                let col = slack_cols[i]?;
                let rc = sol.reduced_costs[col];
                let y = match self.rows[i].rel {
                    Relation::Ge => rc,
                    Relation::Le => -rc,
                    Relation::Eq => unreachable!("Eq rows have no slack"),
                };
                Some(sense * y / row_scales[i])
            })
            .collect();
        // A basis containing artificials (redundant rows) cannot seed a
        // warm start; report no handle rather than a poisoned one.
        let total = sf.c.len();
        let warm_out = if sol.basis.iter().all(|&j| j < total) {
            Some(WarmStart {
                basis: sol.basis,
                shape,
            })
        } else {
            None
        };
        Ok(SparseOutcome {
            solution: LpSolutionDetailed {
                objective,
                x,
                duals,
                reduced_costs: sol.reduced_costs[..n].to_vec(),
            },
            warm: warm_out,
            warm_used,
        })
    }

    /// Solves the problem, seeding the sparse backend's dual simplex
    /// from a previous solve's basis when `warm` is compatible (same
    /// [`LoweredShape`] — i.e. only bounds/right-hand sides changed, as
    /// under branch-and-bound branching). Under the dense oracle
    /// backend this is a plain cold solve and no handle is returned.
    ///
    /// # Errors
    /// As [`LpProblem::solve`]; a warm seed that cannot be used falls
    /// back to a cold solve rather than erroring.
    pub fn solve_with_warm_start(&self, warm: Option<&WarmStart>) -> Result<WarmOutcome, LpError> {
        match backend() {
            LpBackend::Dense => {
                let d = self.solve_detailed_dense()?;
                Ok(WarmOutcome {
                    solution: LpSolution {
                        objective: d.objective,
                        x: d.x,
                    },
                    warm: None,
                    warm_used: false,
                })
            }
            LpBackend::Sparse => {
                let out = self.solve_sparse_outcome(warm)?;
                Ok(WarmOutcome {
                    solution: LpSolution {
                        objective: out.solution.objective,
                        x: out.solution.x,
                    },
                    warm: out.warm,
                    warm_used: out.warm_used,
                })
            }
        }
    }

    /// Returns the objective coefficients.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Returns `true` if this is a minimisation problem.
    pub fn is_minimize(&self) -> bool {
        self.minimize
    }

    /// Lower bound of a variable.
    ///
    /// # Panics
    /// Panics if `var` is out of range.
    pub fn lower_bound(&self, var: usize) -> f64 {
        self.lower[var]
    }

    /// Upper bound of a variable.
    ///
    /// # Panics
    /// Panics if `var` is out of range.
    pub fn upper_bound(&self, var: usize) -> f64 {
        self.upper[var]
    }

    /// Checks a candidate point against all constraints and bounds with
    /// tolerance `tol`; returns the first violated row index, or `None`
    /// if feasible. (Exposed for tests and for the ILP layer.)
    pub fn first_violation(&self, x: &[f64], tol: f64) -> Option<usize> {
        assert_eq!(x.len(), self.n, "point dimension mismatch");
        for v in 0..self.n {
            if x[v] < self.lower[v] - tol || x[v] > self.upper[v] + tol {
                return Some(usize::MAX); // bound violation marker
            }
        }
        for (i, row) in self.rows.iter().enumerate() {
            let lhs: f64 = row.coeffs.iter().map(|&(v, c)| c * x[v]).sum();
            let ok = match row.rel {
                Relation::Le => lhs <= row.rhs + tol,
                Relation::Ge => lhs >= row.rhs - tol,
                Relation::Eq => (lhs - row.rhs).abs() <= tol,
            };
            if !ok {
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_testkit::prelude::*;

    #[test]
    fn min_with_ge() {
        // min x + 2y s.t. x + y ≥ 3, y ≤ 2.
        let mut lp = LpProblem::minimize(2);
        lp.set_objective(&[1.0, 2.0]);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 3.0);
        lp.add_constraint(&[(1, 1.0)], Relation::Le, 2.0);
        let s = lp.solve().unwrap();
        assert!((s.objective - 3.0).abs() < 1e-9);
        assert!((s.x[0] - 3.0).abs() < 1e-9);
        assert!(s.x[1].abs() < 1e-9);
    }

    #[test]
    fn maximize_reports_max() {
        let mut lp = LpProblem::maximize(2);
        lp.set_objective(&[3.0, 5.0]);
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(&[(1, 2.0)], Relation::Le, 12.0);
        lp.add_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
        let s = lp.solve().unwrap();
        assert!((s.objective - 36.0).abs() < 1e-9);
        assert!((s.x[0] - 2.0).abs() < 1e-9 && (s.x[1] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn variable_bounds_respected() {
        // min x with x ∈ [2, 5].
        let mut lp = LpProblem::minimize(1);
        lp.set_objective(&[1.0]);
        lp.set_bounds(0, 2.0, 5.0);
        let s = lp.solve().unwrap();
        assert!((s.x[0] - 2.0).abs() < 1e-9);
        // max hits the upper bound.
        let mut lp = LpProblem::maximize(1);
        lp.set_objective(&[1.0]);
        lp.set_bounds(0, 2.0, 5.0);
        let s = lp.solve().unwrap();
        assert!((s.x[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn negative_lower_bound_shift() {
        // min x with x ∈ [−3, ∞) and x ≥ −1 → optimum −1.
        let mut lp = LpProblem::minimize(1);
        lp.set_objective(&[1.0]);
        lp.set_bounds(0, -3.0, f64::INFINITY);
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, -1.0);
        let s = lp.solve().unwrap();
        assert!((s.x[0] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn negative_rhs_normalised() {
        // x ≤ −1 with x ∈ [−5, 0]: feasible, min −x → x = −1? No:
        // min x → x = −5; max x → x = −1.
        let mut lp = LpProblem::maximize(1);
        lp.set_objective(&[1.0]);
        lp.set_bounds(0, -5.0, 0.0);
        lp.add_constraint(&[(0, 1.0)], Relation::Le, -1.0);
        let s = lp.solve().unwrap();
        assert!((s.x[0] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn equality_constraints() {
        // min x+y s.t. x + y = 4, x − y = 2 → (3,1).
        let mut lp = LpProblem::minimize(2);
        lp.set_objective(&[1.0, 1.0]);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 4.0);
        lp.add_constraint(&[(0, 1.0), (1, -1.0)], Relation::Eq, 2.0);
        let s = lp.solve().unwrap();
        assert!((s.x[0] - 3.0).abs() < 1e-9);
        assert!((s.x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LpProblem::minimize(1);
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, 5.0);
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 1.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LpProblem::maximize(1);
        lp.set_objective(&[1.0]);
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn lpqc_shape_power_min() {
        // A miniature of the paper's LPQC with a fixed assignment:
        // two relays serving one SS each; coverage floors and an SNR-style
        // cross constraint.
        //   min P1 + P2
        //   P1·g11 ≥ pss1          (coverage of SS1 by RS1)
        //   P2·g22 ≥ pss2          (coverage of SS2 by RS2)
        //   P1·g11 − β·P2·g21 ≥ 0  (SNR at SS1)
        //   P2·g22 − β·P1·g12 ≥ 0  (SNR at SS2)
        //   0 ≤ Pi ≤ pmax
        let (g11, g22, g21, g12) = (1e-3, 1e-3, 1e-5, 1e-5);
        let (pss1, pss2, beta, pmax) = (2e-4, 3e-4, 5.0, 1.0);
        let mut lp = LpProblem::minimize(2);
        lp.set_objective(&[1.0, 1.0]);
        lp.set_bounds(0, 0.0, pmax);
        lp.set_bounds(1, 0.0, pmax);
        lp.add_constraint(&[(0, g11)], Relation::Ge, pss1);
        lp.add_constraint(&[(1, g22)], Relation::Ge, pss2);
        lp.add_constraint(&[(0, g11), (1, -beta * g21)], Relation::Ge, 0.0);
        lp.add_constraint(&[(1, g22), (0, -beta * g12)], Relation::Ge, 0.0);
        let s = lp.solve().unwrap();
        assert!(lp.first_violation(&s.x, 1e-9).is_none());
        // Coverage floors bind: P1 = 0.2, P2 = 0.3 (SNR slack at these).
        assert!((s.x[0] - 0.2).abs() < 1e-6);
        assert!((s.x[1] - 0.3).abs() < 1e-6);
    }

    #[test]
    fn first_violation_reports() {
        let mut lp = LpProblem::minimize(2);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, 1.0);
        assert_eq!(lp.first_violation(&[2.0, 0.0], 1e-9), Some(0));
        assert_eq!(lp.first_violation(&[0.5, 0.4], 1e-9), None);
        assert_eq!(lp.first_violation(&[-1.0, 0.0], 1e-9), Some(usize::MAX));
    }

    #[test]
    #[should_panic]
    fn bad_variable_index_panics() {
        LpProblem::minimize(1).add_constraint(&[(1, 1.0)], Relation::Le, 0.0);
    }

    #[test]
    #[should_panic]
    fn inverted_bounds_panic() {
        LpProblem::minimize(1).set_bounds(0, 2.0, 1.0);
    }

    prop! {
        /// Random bounded LPs: the solver's optimum must be feasible and
        /// no random feasible point may beat it.
        fn prop_optimality_vs_random_points(seed in 0u64..300) {
            let mut rng = Rng::seed_from_u64(seed);
            let n = rng.gen_range(1..4usize);
            let m = rng.gen_range(1..4usize);
            let mut lp = LpProblem::minimize(n);
            let obj: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
            lp.set_objective(&obj);
            for v in 0..n {
                lp.set_bounds(v, 0.0, rng.gen_range(0.5..10.0));
            }
            for _ in 0..m {
                let coeffs: Vec<(usize, f64)> =
                    (0..n).map(|v| (v, rng.gen_range(-3.0..3.0))).collect();
                lp.add_constraint(&coeffs, Relation::Le, rng.gen_range(0.0..10.0));
            }
            match lp.solve() {
                Ok(sol) => {
                    prop_assert!(lp.first_violation(&sol.x, 1e-6).is_none());
                    // Random feasible points cannot beat the optimum.
                    for _ in 0..50 {
                        let p: Vec<f64> = (0..n)
                            .map(|v| rng.gen_range(0.0..=lp.upper_bound(v)))
                            .collect();
                        if lp.first_violation(&p, 1e-9).is_none() {
                            let val: f64 = obj.iter().zip(&p).map(|(c, x)| c * x).sum();
                            prop_assert!(val >= sol.objective - 1e-6,
                                "random point {val} beat optimum {}", sol.objective);
                        }
                    }
                }
                Err(LpError::Infeasible) => {
                    // Bounded box + Le rows: infeasibility only when a row
                    // excludes the box entirely — possible; nothing to check.
                }
                Err(e) => prop_assert!(false, "unexpected error {e}"),
            }
        }
    }
}

#[cfg(test)]
mod dual_tests {
    use super::*;

    #[test]
    fn shadow_price_of_binding_row() {
        // min x s.t. 2x ≥ 4 → x = 2, obj = 2, dual = dObj/dRhs = 0.5.
        let mut lp = LpProblem::minimize(1);
        lp.set_objective(&[1.0]);
        lp.add_constraint(&[(0, 2.0)], Relation::Ge, 4.0);
        let d = lp.solve_detailed().unwrap();
        assert!((d.objective - 2.0).abs() < 1e-9);
        let y = d.duals[0].unwrap();
        assert!((y - 0.5).abs() < 1e-9, "dual {y}");
    }

    #[test]
    fn slack_row_has_zero_dual() {
        // min x s.t. x ≥ 1, x ≥ 0.2 (second row slack at optimum).
        let mut lp = LpProblem::minimize(1);
        lp.set_objective(&[1.0]);
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, 1.0);
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, 0.2);
        let d = lp.solve_detailed().unwrap();
        assert!((d.duals[0].unwrap() - 1.0).abs() < 1e-9);
        assert!(d.duals[1].unwrap().abs() < 1e-9);
    }

    #[test]
    fn maximisation_dual_sign() {
        // max 3x s.t. x ≤ 5 → obj = 15, dObj/dRhs = 3.
        let mut lp = LpProblem::maximize(1);
        lp.set_objective(&[3.0]);
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 5.0);
        let d = lp.solve_detailed().unwrap();
        assert!((d.objective - 15.0).abs() < 1e-9);
        assert!((d.duals[0].unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn strong_duality_on_production_lp() {
        // Classic: max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18.
        // Optimum 36 at (2, 6); duals: (0, 1.5, 1).
        let mut lp = LpProblem::maximize(2);
        lp.set_objective(&[3.0, 5.0]);
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(&[(1, 2.0)], Relation::Le, 12.0);
        lp.add_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
        let d = lp.solve_detailed().unwrap();
        let y: Vec<f64> = d.duals.iter().map(|v| v.unwrap()).collect();
        assert!(y[0].abs() < 1e-9);
        assert!((y[1] - 1.5).abs() < 1e-9);
        assert!((y[2] - 1.0).abs() < 1e-9);
        // Strong duality: b'y = objective.
        let by = 4.0 * y[0] + 12.0 * y[1] + 18.0 * y[2];
        assert!((by - d.objective).abs() < 1e-9);
    }

    #[test]
    fn dual_sensitivity_matches_finite_difference() {
        // Nudge a binding rhs and confirm the objective moves by ~dual·Δ.
        let build = |rhs: f64| {
            let mut lp = LpProblem::minimize(2);
            lp.set_objective(&[2.0, 3.0]);
            lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, rhs);
            lp.add_constraint(&[(1, 1.0)], Relation::Le, 2.0);
            lp
        };
        let base = build(5.0).solve_detailed().unwrap();
        let y = base.duals[0].unwrap();
        let eps = 1e-3;
        let bumped = build(5.0 + eps).solve_detailed().unwrap();
        let fd = (bumped.objective - base.objective) / eps;
        assert!((fd - y).abs() < 1e-6, "fd {fd} vs dual {y}");
    }

    #[test]
    fn scaled_row_dual_unscaled_correctly() {
        // Same geometry, wildly scaled coefficients: dual must match the
        // unscaled twin.
        let mut a = LpProblem::minimize(1);
        a.set_objective(&[1.0]);
        a.add_constraint(&[(0, 1.0)], Relation::Ge, 3.0);
        let mut b = LpProblem::minimize(1);
        b.set_objective(&[1.0]);
        b.add_constraint(&[(0, 1e9)], Relation::Ge, 3e9);
        let ya = a.solve_detailed().unwrap().duals[0].unwrap();
        let yb = b.solve_detailed().unwrap().duals[0].unwrap();
        // dObj/dRhs for row b is 1e-9 of row a's (its rhs is 1e9 larger).
        assert!((ya - 1.0).abs() < 1e-9);
        assert!((yb - 1e-9).abs() < 1e-15);
    }

    #[test]
    fn equality_rows_report_none() {
        let mut lp = LpProblem::minimize(1);
        lp.set_objective(&[1.0]);
        lp.add_constraint(&[(0, 1.0)], Relation::Eq, 2.0);
        let d = lp.solve_detailed().unwrap();
        assert!(d.duals[0].is_none());
    }

    #[test]
    fn reduced_costs_nonnegative_at_min_optimum() {
        let mut lp = LpProblem::minimize(2);
        lp.set_objective(&[1.0, 2.0]);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 3.0);
        let d = lp.solve_detailed().unwrap();
        for rc in &d.reduced_costs {
            assert!(*rc >= -1e-9);
        }
    }
}
