//! Error types for the LP/ILP solvers.

use std::error::Error;
use std::fmt;

/// Reasons an LP/ILP solve can fail to produce an optimum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The iteration limit was hit (numerical trouble; should not occur
    /// on the well-scaled problems this workspace generates).
    IterationLimit,
    /// The branch-and-bound node cap was exhausted before an integral
    /// optimum was proven (see [`crate::budget::Budget::with_node_limit`]
    /// and [`crate::IlpProblem::set_node_limit`]).
    NodeLimit,
    /// The solve was stopped cooperatively: the [`crate::budget::Budget`]
    /// deadline passed or its cancellation flag was raised.
    Cancelled,
    /// The sparse core lost numerical integrity it could not repair: a
    /// singular basis factorization, or a factorization that failed its
    /// residual self-check twice (e.g. under the `LpBasisDesync` chaos
    /// fault). Never a silently wrong answer. Warm-start entry points
    /// also use this to report an unusable seed basis, which callers
    /// treat as "fall back to a cold solve".
    Numerical(String),
    /// The problem is malformed (e.g. a constraint references a variable
    /// that does not exist). The payload describes the defect.
    Malformed(String),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "problem is infeasible"),
            LpError::Unbounded => write!(f, "objective is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            LpError::NodeLimit => write!(f, "branch-and-bound node limit exceeded"),
            LpError::Cancelled => write!(f, "solve cancelled (deadline or cancellation flag)"),
            LpError::Numerical(why) => write!(f, "numerical failure: {why}"),
            LpError::Malformed(why) => write!(f, "malformed problem: {why}"),
        }
    }
}

impl Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(LpError::Infeasible.to_string(), "problem is infeasible");
        assert_eq!(LpError::Unbounded.to_string(), "objective is unbounded");
        assert!(LpError::Malformed("x".into()).to_string().contains('x'));
        assert!(!LpError::IterationLimit.to_string().is_empty());
        assert!(LpError::NodeLimit.to_string().contains("node"));
        assert!(LpError::Cancelled.to_string().contains("cancelled"));
        assert!(LpError::Numerical("drift".into())
            .to_string()
            .contains("drift"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(LpError::Infeasible);
        assert!(e.source().is_none());
    }
}
