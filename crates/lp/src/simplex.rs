//! Dense two-phase primal simplex on equality standard form.
//!
//! This is the numerical core; user-facing modelling lives in
//! [`crate::problem`]. The tableau is dense `Vec<Vec<f64>>` — the
//! reproduction's LPs have at most a few hundred rows/columns, where dense
//! pivoting is both fast and simple to audit.

// Dense-tableau pivoting reads most naturally with explicit indices;
// iterator rewrites obscure the row/column arithmetic.
#![allow(clippy::needless_range_loop)]

use crate::budget::Budget;
use crate::error::LpError;

/// Numerical tolerance for pivoting and feasibility tests.
pub const TOL: f64 = 1e-9;

/// How many pivots run between cooperative budget polls; a power of two
/// so the check is a mask, keeping `Instant::now` off the hot path.
const BUDGET_POLL_MASK: usize = 63;

/// A standard-form LP: minimise `c·x` subject to `A x = b`, `x ≥ 0`,
/// with `b ≥ 0` (rows must be pre-negated by the caller if needed).
#[derive(Debug, Clone)]
pub struct StandardForm {
    /// Constraint matrix, `m × n`.
    pub a: Vec<Vec<f64>>,
    /// Right-hand side, length `m`, all entries ≥ 0.
    pub b: Vec<f64>,
    /// Objective coefficients, length `n`.
    pub c: Vec<f64>,
}

/// Result of a simplex run: optimal objective value, primal solution and
/// the final reduced costs.
#[derive(Debug, Clone)]
pub struct SimplexSolution {
    /// The minimal objective value.
    pub objective: f64,
    /// Values of the structural variables (length `n`).
    pub x: Vec<f64>,
    /// Reduced cost of each structural variable at the optimum
    /// (non-negative for a minimisation optimum; zero for basic
    /// variables). `reduced_costs[j]` is how much the objective would
    /// grow per unit increase of the non-basic variable `j`.
    pub reduced_costs: Vec<f64>,
}

/// Solves a standard-form LP with the two-phase primal simplex method.
///
/// Phase 1 drives artificial variables to zero (detecting infeasibility);
/// phase 2 optimises the true objective. Bland's rule is engaged after a
/// burn-in of Dantzig pivots, guaranteeing termination on degenerate
/// problems.
///
/// # Errors
/// [`LpError::Infeasible`], [`LpError::Unbounded`], or
/// [`LpError::IterationLimit`] (pathological cycling beyond the Bland
/// safeguard, practically unreachable).
pub fn solve_standard(sf: &StandardForm) -> Result<SimplexSolution, LpError> {
    solve_standard_with(sf, &Budget::unlimited())
}

/// [`solve_standard`] under a cooperative [`Budget`]: the deadline and
/// cancellation flag are polled every few pivots.
///
/// # Errors
/// As [`solve_standard`], plus [`LpError::Cancelled`] when the budget's
/// deadline passes or its flag is raised mid-solve.
pub fn solve_standard_with(sf: &StandardForm, budget: &Budget) -> Result<SimplexSolution, LpError> {
    let mut pivots = [0usize; 2];
    let out = solve_inner(sf, budget, &mut pivots);
    // One flush per solve: the pivot loop itself stays uninstrumented.
    if sag_obs::enabled() {
        sag_obs::counter("lp.solves", 1);
        sag_obs::counter("lp.pivots_phase1", pivots[0] as u64);
        sag_obs::counter("lp.pivots_phase2", pivots[1] as u64);
        if matches!(out, Err(LpError::Cancelled)) {
            sag_obs::counter("lp.budget_exhausted", 1);
        }
    }
    out
}

/// [`solve_standard_with`] minus the observability flush; `pivots`
/// receives the per-phase pivot counts even on an error path.
fn solve_inner(
    sf: &StandardForm,
    budget: &Budget,
    pivots: &mut [usize; 2],
) -> Result<SimplexSolution, LpError> {
    let m = sf.a.len();
    let n = sf.c.len();
    for (i, row) in sf.a.iter().enumerate() {
        if row.len() != n {
            return Err(LpError::Malformed(format!(
                "row {i} has {} coefficients, expected {n}",
                row.len()
            )));
        }
        if sf.b[i] < -TOL {
            return Err(LpError::Malformed(format!(
                "b[{i}] = {} is negative",
                sf.b[i]
            )));
        }
    }
    if sf.b.len() != m {
        return Err(LpError::Malformed(format!(
            "b has {} entries, expected {m}",
            sf.b.len()
        )));
    }

    // Slack crashing: a structural column that is a singleton `+1` in
    // row `i` (and zero elsewhere) with zero cost can serve as row `i`'s
    // initial basic variable, so that row needs no artificial. This keeps
    // badly-scaled bound rows (huge rhs) out of the phase-1 objective.
    let mut crash: Vec<Option<usize>> = vec![None; m];
    let mut used_col = vec![false; n];
    for i in 0..m {
        for j in 0..n {
            if used_col[j] || sf.c[j] != 0.0 {
                continue;
            }
            if (sf.a[i][j] - 1.0).abs() <= TOL && (0..m).all(|k| k == i || sf.a[k][j].abs() <= TOL)
            {
                crash[i] = Some(j);
                used_col[j] = true;
                break;
            }
        }
    }

    // Tableau layout: columns [structural 0..n | artificial n..n+m | rhs].
    // Crashed rows keep a zeroed artificial column that never enters.
    let width = n + m + 1;
    let mut t: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
    for i in 0..m {
        let mut row = vec![0.0; width];
        row[..n].copy_from_slice(&sf.a[i]);
        if crash[i].is_none() {
            row[n + i] = 1.0;
        }
        row[width - 1] = sf.b[i].max(0.0);
        t.push(row);
    }
    let mut basis: Vec<usize> = (0..m).map(|i| crash[i].unwrap_or(n + i)).collect();

    // ---- Phase 1: minimise the sum of artificials. ----
    let mut obj = vec![0.0; width];
    for j in n..n + m {
        obj[j] = 1.0;
    }
    // Price out the basic artificials (crashed rows have no artificial
    // and a zero-cost basic column, so they contribute nothing).
    for i in 0..m {
        if crash[i].is_none() {
            for j in 0..width {
                obj[j] -= t[i][j];
            }
        }
    }
    run_phases(&mut t, &mut obj, &mut basis, n + m, budget, &mut pivots[0])?;
    let phase1 = -obj[width - 1];
    if std::env::var("SAG_LP_DEBUG").is_ok() {
        eprintln!("phase1 residual = {phase1:.6e}");
    }
    if phase1 > 1e-7 {
        return Err(LpError::Infeasible);
    }

    // Pivot any artificial still in the basis out (degenerate rows), or
    // drop redundant rows by zeroing them.
    for i in 0..m {
        if basis[i] >= n {
            // Find a structural column with a non-zero entry in this row.
            if let Some(j) = (0..n).find(|&j| t[i][j].abs() > TOL) {
                pivot(&mut t, &mut obj, &mut basis, i, j);
            }
            // Otherwise the row is all-zero over structurals (redundant);
            // the artificial stays basic at value 0 and never re-enters
            // because phase 2 blocks artificial columns.
        }
    }

    // ---- Phase 2: minimise the true objective. ----
    let mut obj2 = vec![0.0; width];
    obj2[..n].copy_from_slice(&sf.c);
    // Price out basic variables.
    for i in 0..m {
        let bj = basis[i];
        let coeff = obj2[bj];
        if coeff.abs() > 0.0 {
            for j in 0..width {
                obj2[j] -= coeff * t[i][j];
            }
        }
    }
    run_phases(&mut t, &mut obj2, &mut basis, n, budget, &mut pivots[1])?;

    let mut x = vec![0.0; n];
    for i in 0..m {
        if basis[i] < n {
            x[basis[i]] = t[i][width - 1];
        }
    }
    let objective = sf.c.iter().zip(&x).map(|(c, v)| c * v).sum();
    let reduced_costs = obj2[..n].to_vec();
    Ok(SimplexSolution {
        objective,
        x,
        reduced_costs,
    })
}

/// Runs simplex iterations on the current tableau until optimal.
/// Columns `>= allowed_cols` are excluded from entering the basis
/// (used to lock out artificials in phase 2).
fn run_phases(
    t: &mut [Vec<f64>],
    obj: &mut [f64],
    basis: &mut [usize],
    allowed_cols: usize,
    budget: &Budget,
    pivots: &mut usize,
) -> Result<(), LpError> {
    let m = t.len();
    let width = obj.len();
    let max_iters = 50 * (m + width) + 1000;
    let bland_after = 5 * (m + width);
    for iter in 0..max_iters {
        if iter & BUDGET_POLL_MASK == 0 {
            budget.check_interrupt()?;
        }
        // Entering column: most negative reduced cost (Dantzig), or first
        // negative (Bland) once past the burn-in.
        let entering = if iter < bland_after {
            let mut best = None;
            let mut best_val = -TOL;
            for (j, &cj) in obj.iter().enumerate().take(width - 1) {
                if j < allowed_cols && cj < best_val {
                    best_val = cj;
                    best = Some(j);
                }
            }
            best
        } else {
            (0..allowed_cols.min(width - 1)).find(|&j| obj[j] < -TOL)
        };
        let Some(e) = entering else {
            return Ok(());
        };
        // Leaving row: minimum ratio test; Bland tie-break on basis index.
        let mut leave: Option<(usize, f64)> = None;
        for i in 0..m {
            let a = t[i][e];
            if a > TOL {
                let ratio = t[i][width - 1] / a;
                let better = match leave {
                    None => true,
                    Some((li, lr)) => {
                        ratio < lr - TOL || ((ratio - lr).abs() <= TOL && basis[i] < basis[li])
                    }
                };
                if better {
                    leave = Some((i, ratio));
                }
            }
        }
        let Some((l, _)) = leave else {
            return Err(LpError::Unbounded);
        };
        pivot(t, obj, basis, l, e);
        *pivots += 1;
    }
    Err(LpError::IterationLimit)
}

/// Pivots the tableau on row `l`, column `e`.
fn pivot(t: &mut [Vec<f64>], obj: &mut [f64], basis: &mut [usize], l: usize, e: usize) {
    let width = obj.len();
    let p = t[l][e];
    debug_assert!(p.abs() > TOL, "pivot on near-zero element {p}");
    for j in 0..width {
        t[l][j] /= p;
    }
    for i in 0..t.len() {
        if i != l {
            let f = t[i][e];
            if f.abs() > 0.0 {
                for j in 0..width {
                    t[i][j] -= f * t[l][j];
                }
            }
        }
    }
    let f = obj[e];
    if f.abs() > 0.0 {
        for j in 0..width {
            obj[j] -= f * t[l][j];
        }
    }
    basis[l] = e;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(a: Vec<Vec<f64>>, b: Vec<f64>, c: Vec<f64>) -> Result<SimplexSolution, LpError> {
        solve_standard(&StandardForm { a, b, c })
    }

    #[test]
    fn trivial_equality() {
        // min x  s.t. x = 5.
        let s = solve(vec![vec![1.0]], vec![5.0], vec![1.0]).unwrap();
        assert!((s.objective - 5.0).abs() < 1e-9);
        assert!((s.x[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn classic_lp() {
        // min -3x - 5y s.t. x + s1 = 4; 2y + s2 = 12; 3x + 2y + s3 = 18.
        // Optimum at x=2, y=6, objective -36.
        let a = vec![
            vec![1.0, 0.0, 1.0, 0.0, 0.0],
            vec![0.0, 2.0, 0.0, 1.0, 0.0],
            vec![3.0, 2.0, 0.0, 0.0, 1.0],
        ];
        let b = vec![4.0, 12.0, 18.0];
        let c = vec![-3.0, -5.0, 0.0, 0.0, 0.0];
        let s = solve(a, b, c).unwrap();
        assert!((s.objective + 36.0).abs() < 1e-9);
        assert!((s.x[0] - 2.0).abs() < 1e-9);
        assert!((s.x[1] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_system() {
        // x = 1 and x = 2 simultaneously.
        let a = vec![vec![1.0], vec![1.0]];
        let b = vec![1.0, 2.0];
        let c = vec![1.0];
        assert_eq!(solve(a, b, c).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_objective() {
        // min -x s.t. x - s = 0 (x ≥ 0, s ≥ 0): x free upward.
        let a = vec![vec![1.0, -1.0]];
        let b = vec![0.0];
        let c = vec![-1.0, 0.0];
        assert_eq!(solve(a, b, c).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn redundant_rows_ok() {
        // Same constraint twice: x + y = 2 (duplicated), min x.
        let a = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        let b = vec![2.0, 2.0];
        let c = vec![1.0, 0.0];
        let s = solve(a, b, c).unwrap();
        assert!((s.objective).abs() < 1e-9);
        assert!((s.x[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_vertex() {
        // Degenerate: three constraints meeting at a point.
        let a = vec![
            vec![1.0, 0.0, 1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 1.0, 0.0],
            vec![1.0, 1.0, 0.0, 0.0, 1.0],
        ];
        let b = vec![1.0, 1.0, 2.0];
        let c = vec![-1.0, -1.0, 0.0, 0.0, 0.0];
        let s = solve(a, b, c).unwrap();
        assert!((s.objective + 2.0).abs() < 1e-9);
    }

    #[test]
    fn malformed_row_rejected() {
        let a = vec![vec![1.0, 2.0]];
        let b = vec![1.0];
        let c = vec![1.0];
        assert!(matches!(solve(a, b, c), Err(LpError::Malformed(_))));
    }

    #[test]
    fn negative_rhs_rejected() {
        let a = vec![vec![1.0]];
        let b = vec![-1.0];
        let c = vec![1.0];
        assert!(matches!(solve(a, b, c), Err(LpError::Malformed(_))));
    }

    #[test]
    fn expired_budget_cancels_before_pivoting() {
        let sf = StandardForm {
            a: vec![vec![1.0]],
            b: vec![5.0],
            c: vec![1.0],
        };
        let budget = Budget::unlimited().with_deadline(std::time::Duration::ZERO);
        assert_eq!(
            solve_standard_with(&sf, &budget).unwrap_err(),
            LpError::Cancelled
        );
        // An unlimited budget solves the same system.
        assert!(solve_standard_with(&sf, &Budget::unlimited()).is_ok());
    }

    #[test]
    fn raised_cancel_flag_cancels() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let flag = Arc::new(AtomicBool::new(false));
        let budget = Budget::unlimited().with_cancel_flag(Arc::clone(&flag));
        let sf = StandardForm {
            a: vec![vec![1.0]],
            b: vec![5.0],
            c: vec![1.0],
        };
        assert!(solve_standard_with(&sf, &budget).is_ok());
        flag.store(true, Ordering::Relaxed);
        assert_eq!(
            solve_standard_with(&sf, &budget).unwrap_err(),
            LpError::Cancelled
        );
    }
}
