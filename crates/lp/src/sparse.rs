//! Compressed sparse column (CSC) matrices for the revised simplex.
//!
//! ILPQC/LPQC constraint matrices are overwhelmingly sparse — one
//! coverage row per subscriber touching only the handful of nearby
//! candidates — so the sparse LP core stores `A` column-wise:
//! [`CscMatrix`] keeps, per column, the strictly-increasing row indices
//! and their values. Columns are what the revised simplex consumes
//! (pricing walks `y·a_j`, FTRAN solves against one entering column),
//! so CSC is the natural orientation.
//!
//! Construction is *total*: every malformed input — an out-of-range
//! index, a non-finite value — is a typed [`SparseError`], never a
//! panic, because matrices are also assembled from fuzzed and
//! chaos-mutated inputs in the test rigs. Duplicate entries are summed
//! and exact-zero results dropped, so any triplet order builds the same
//! canonical matrix.

// The fuzz rigs feed this module adversarial input; every failure must
// be a typed error.
#![deny(clippy::unwrap_used)]
#![deny(clippy::expect_used)]
#![deny(clippy::panic)]

use std::fmt;

/// A typed construction failure for [`CscMatrix`] / [`CscBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// A triplet's row index is `>= nrows`.
    RowOutOfRange {
        /// The offending row index.
        row: usize,
        /// The matrix row count.
        nrows: usize,
    },
    /// A triplet's column index is `>= ncols`.
    ColOutOfRange {
        /// The offending column index.
        col: usize,
        /// The matrix column count.
        ncols: usize,
    },
    /// A value is NaN or ±∞ (e.g. a byte-flipped triplet).
    NonFinite {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::RowOutOfRange { row, nrows } => {
                write!(f, "row index {row} out of range (nrows = {nrows})")
            }
            SparseError::ColOutOfRange { col, ncols } => {
                write!(f, "column index {col} out of range (ncols = {ncols})")
            }
            SparseError::NonFinite { row, col } => {
                write!(f, "non-finite value at ({row}, {col})")
            }
        }
    }
}

impl std::error::Error for SparseError {}

/// A compressed-sparse-column matrix over `f64`.
///
/// Canonical invariants (enforced by every constructor):
/// * `col_ptr` has `ncols + 1` monotone entries with
///   `col_ptr[ncols] == nnz`;
/// * row indices are strictly increasing within each column;
/// * every stored value is finite and non-zero.
///
/// # Example
/// ```
/// use sag_lp::sparse::CscMatrix;
/// // [[1, 0], [0, 2]] from unordered, duplicated triplets.
/// let m = CscMatrix::from_triplets(2, 2, &[(1, 1, 1.5), (0, 0, 1.0), (1, 1, 0.5)]).unwrap();
/// assert_eq!(m.nnz(), 2);
/// assert_eq!(m.col(1), (&[1usize][..], &[2.0][..]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// An empty `nrows × ncols` matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CscMatrix {
            nrows,
            ncols,
            col_ptr: vec![0; ncols + 1],
            row_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds the canonical matrix from `(row, col, value)` triplets in
    /// any order. Duplicates are summed; entries whose sum is exactly
    /// zero are dropped.
    ///
    /// # Errors
    /// [`SparseError`] on an out-of-range index or a non-finite value —
    /// never panics.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self, SparseError> {
        let mut builder = CscBuilder::new(nrows, ncols);
        // Route through the per-column builder by bucketing first: sort
        // a copy by (col, row) so the builder sees columns in order.
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        for &(row, col, value) in &sorted {
            if col >= ncols {
                return Err(SparseError::ColOutOfRange { col, ncols });
            }
            if row >= nrows {
                return Err(SparseError::RowOutOfRange { row, nrows });
            }
            if !value.is_finite() {
                return Err(SparseError::NonFinite { row, col });
            }
        }
        sorted.sort_by_key(|a| (a.1, a.0));
        let mut i = 0usize;
        for col in 0..ncols {
            let start = i;
            while i < sorted.len() && sorted[i].1 == col {
                i += 1;
            }
            let entries: Vec<(usize, f64)> =
                sorted[start..i].iter().map(|&(r, _, v)| (r, v)).collect();
            builder.push_col(&entries)?;
        }
        Ok(builder.finish())
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored (structurally non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The row indices and values of column `j` (strictly increasing
    /// rows). Out-of-range `j` yields empty slices rather than a panic.
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        if j >= self.ncols {
            return (&[], &[]);
        }
        let range = self.col_ptr[j]..self.col_ptr[j + 1];
        (&self.row_idx[range.clone()], &self.values[range])
    }

    /// `y · a_j` for a dense vector `y` of length `nrows` — the pricing
    /// kernel of the revised simplex. Out-of-range `j` is 0.
    pub fn dot_col(&self, j: usize, y: &[f64]) -> f64 {
        let (rows, vals) = self.col(j);
        let mut acc = 0.0;
        for (&r, &v) in rows.iter().zip(vals) {
            acc += y[r] * v;
        }
        acc
    }

    /// Accumulates `scale * a_j` into the dense vector `out`
    /// (length `nrows`) — the residual/update kernel.
    pub fn axpy_col(&self, j: usize, scale: f64, out: &mut [f64]) {
        let (rows, vals) = self.col(j);
        for (&r, &v) in rows.iter().zip(vals) {
            out[r] += scale * v;
        }
    }

    /// The matrix transposed into row-major sparse rows — used by the
    /// modelling layer to bulk-add CSC-assembled constraint blocks.
    pub fn to_rows(&self) -> Vec<Vec<(usize, f64)>> {
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.nrows];
        for j in 0..self.ncols {
            let (ridx, vals) = self.col(j);
            for (&r, &v) in ridx.iter().zip(vals) {
                rows[r].push((j, v));
            }
        }
        rows
    }
}

/// Incremental column-by-column CSC assembly.
///
/// Columns are appended in order; each column's entries may arrive in
/// any order, with duplicates (summed) and explicit zeros (dropped).
/// The builder validates every entry and never panics.
#[derive(Debug, Clone)]
pub struct CscBuilder {
    nrows: usize,
    ncols_hint: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscBuilder {
    /// A builder for an `nrows`-row matrix; `ncols` is a capacity hint
    /// (the finished matrix has exactly as many columns as were pushed,
    /// padded with empty columns up to the hint).
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CscBuilder {
            nrows,
            ncols_hint: ncols,
            col_ptr: {
                let mut p = Vec::with_capacity(ncols + 1);
                p.push(0);
                p
            },
            row_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of columns pushed so far.
    pub fn ncols(&self) -> usize {
        self.col_ptr.len() - 1
    }

    /// Appends one column from `(row, value)` entries in any order;
    /// duplicates are summed, exact-zero sums dropped. Returns the new
    /// column's index.
    ///
    /// # Errors
    /// [`SparseError`] on an out-of-range row or non-finite value; the
    /// builder is left unchanged on error.
    pub fn push_col(&mut self, entries: &[(usize, f64)]) -> Result<usize, SparseError> {
        let col = self.ncols();
        for &(row, value) in entries {
            if row >= self.nrows {
                return Err(SparseError::RowOutOfRange {
                    row,
                    nrows: self.nrows,
                });
            }
            if !value.is_finite() {
                return Err(SparseError::NonFinite { row, col });
            }
        }
        let mut sorted: Vec<(usize, f64)> = entries.to_vec();
        sorted.sort_by_key(|&(r, _)| r);
        let before = self.row_idx.len();
        for (row, value) in sorted {
            if self.row_idx.len() > before && self.row_idx[self.row_idx.len() - 1] == row {
                let last = self.values.len() - 1;
                self.values[last] += value;
            } else {
                self.row_idx.push(row);
                self.values.push(value);
            }
        }
        // Drop entries that summed to exactly zero, keeping canonical
        // form identical however the duplicates arrived.
        let mut w = before;
        for r in before..self.row_idx.len() {
            if self.values[r] != 0.0 {
                self.row_idx[w] = self.row_idx[r];
                self.values[w] = self.values[r];
                w += 1;
            }
        }
        self.row_idx.truncate(w);
        self.values.truncate(w);
        self.col_ptr.push(self.row_idx.len());
        Ok(col)
    }

    /// Finishes the matrix, padding with empty columns up to the
    /// capacity hint when fewer were pushed.
    pub fn finish(mut self) -> CscMatrix {
        while self.ncols() < self.ncols_hint {
            let nnz = self.row_idx.len();
            self.col_ptr.push(nnz);
        }
        CscMatrix {
            nrows: self.nrows,
            ncols: self.col_ptr.len() - 1,
            col_ptr: self.col_ptr,
            row_idx: self.row_idx,
            values: self.values,
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;

    #[test]
    fn triplets_build_canonical_any_order() {
        let a = CscMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (2, 0, 3.0), (1, 1, 2.0)]).unwrap();
        let b = CscMatrix::from_triplets(3, 2, &[(1, 1, 2.0), (2, 0, 3.0), (0, 0, 1.0)]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.col(0), (&[0usize, 2][..], &[1.0, 3.0][..]));
    }

    #[test]
    fn duplicates_sum_and_zero_sums_drop() {
        let m = CscMatrix::from_triplets(2, 1, &[(0, 0, 2.0), (0, 0, -2.0), (1, 0, 1.0)]).unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.col(0), (&[1usize][..], &[1.0][..]));
    }

    #[test]
    fn out_of_range_and_non_finite_are_typed() {
        assert_eq!(
            CscMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]),
            Err(SparseError::RowOutOfRange { row: 2, nrows: 2 })
        );
        assert_eq!(
            CscMatrix::from_triplets(2, 2, &[(0, 3, 1.0)]),
            Err(SparseError::ColOutOfRange { col: 3, ncols: 2 })
        );
        assert_eq!(
            CscMatrix::from_triplets(2, 2, &[(0, 0, f64::NAN)]),
            Err(SparseError::NonFinite { row: 0, col: 0 })
        );
    }

    #[test]
    fn dot_and_axpy_match_dense() {
        let m = CscMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (2, 0, 3.0), (1, 1, 2.0)]).unwrap();
        assert_eq!(m.dot_col(0, &[1.0, 10.0, 100.0]), 301.0);
        let mut out = vec![0.0; 3];
        m.axpy_col(0, 2.0, &mut out);
        assert_eq!(out, vec![2.0, 0.0, 6.0]);
        // Out-of-range column: inert, not a panic.
        assert_eq!(m.dot_col(9, &[0.0; 3]), 0.0);
    }

    #[test]
    fn builder_pads_to_hint_and_transposes() {
        let mut b = CscBuilder::new(2, 3);
        b.push_col(&[(1, 4.0), (0, 5.0)]).unwrap();
        let m = b.finish();
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.col(0), (&[0usize, 1][..], &[5.0, 4.0][..]));
        assert_eq!(m.col(2), (&[][..], &[][..]));
        let rows = m.to_rows();
        assert_eq!(rows[0], vec![(0, 5.0)]);
        assert_eq!(rows[1], vec![(0, 4.0)]);
    }

    #[test]
    fn display_messages_name_the_defect() {
        assert!(SparseError::RowOutOfRange { row: 7, nrows: 3 }
            .to_string()
            .contains('7'));
        assert!(SparseError::NonFinite { row: 1, col: 2 }
            .to_string()
            .contains("non-finite"));
    }
}
