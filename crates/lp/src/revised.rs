//! Sparse revised simplex with LU basis factorization and dual-simplex
//! warm starts.
//!
//! The dense tableau in [`crate::simplex`] pays `O(m·width)` per pivot
//! regardless of structure. ILPQC/LPQC matrices are mostly slack and
//! coverage singletons, so this module keeps `A` in CSC form
//! ([`CscMatrix`]) and represents the basis inverse implicitly:
//!
//! * a direct **LU factorization** built by column-singleton
//!   triangularization — columns with one remaining nonzero pivot
//!   immediately, yielding a permuted upper-triangular block `U11`; the
//!   leftover "bump" `B22` is factorized densely with partial pivoting.
//!   Set-cover bases are almost entirely slack/singleton columns, so
//!   the bump stays tiny and each FTRAN/BTRAN costs `O(nnz + bump²)`;
//! * **product-form eta updates** after each pivot (Bartels–Golub
//!   style), with periodic refactorization once the eta file reaches
//!   [`SparseSimplex::refactor_period`] — bounding both fill and drift;
//! * a **residual self-check** after every refactorization: if
//!   `‖b − B·x‖∞` drifts past [`RESIDUAL_TOL`], the factorization is
//!   rebuilt once and, failing that, the solve surfaces
//!   [`LpError::Numerical`] instead of a silently wrong basis (this is
//!   the detection path the `Fault::LpBasisDesync` chaos arm exercises
//!   via [`inject_lu_skew`]);
//! * **Bland's rule** after a Dantzig burn-in, guaranteeing termination
//!   on degenerate problems (see the Beale-example regression test);
//! * a **dual simplex** entry point ([`solve_sparse_from_basis`]) so
//!   branch-and-bound children re-solve from their parent's basis: a
//!   bound change only moves `b`, leaving the parent basis dual
//!   feasible.
//!
//! The final answer is always extracted from a *fresh* factorization of
//! the terminal basis — never through the eta file — so the reported
//! objective is a pure function of the final basis and refactorization
//! cadence cannot perturb it.

// This core must never panic on adversarial (fuzzed / chaos-mutated)
// input; every failure is a typed `LpError`.
#![deny(clippy::unwrap_used)]
#![deny(clippy::expect_used)]
// Factorization and substitution kernels read most naturally with
// explicit indices.
#![allow(clippy::needless_range_loop)]

use std::cell::Cell;

use crate::budget::Budget;
use crate::error::LpError;
use crate::simplex::TOL;
use crate::sparse::CscMatrix;

/// Relative residual above which a freshly built factorization is
/// rejected (and rebuilt once before erroring). Generous against honest
/// rounding, far below any real desync.
pub const RESIDUAL_TOL: f64 = 1e-6;

/// Pivots between cooperative budget polls (mask, so a power of two
/// minus one).
const BUDGET_POLL_MASK: usize = 63;

/// Pivot magnitude below which the triangularization leaves a column
/// for the dense bump / the dense LU declares the basis singular.
const SING_TOL: f64 = 1e-11;

/// Reduced costs more negative than this at extraction force the solve
/// to resume (matches the dense phase-1 residual threshold).
const OPT_TOL: f64 = 1e-7;

/// A standard-form LP over a sparse matrix: minimise `c·x` subject to
/// `A x = b`, `x ≥ 0`. Unlike [`crate::simplex::StandardForm`], `b` may
/// carry any sign — rows are *not* negated, which keeps the lowered
/// shape identical across branch-and-bound bound changes (the key to
/// warm-start reuse).
#[derive(Debug, Clone)]
pub struct SparseStandardForm {
    /// Constraint matrix, `m × n`, in CSC form.
    pub a: CscMatrix,
    /// Right-hand side, length `m`, any sign.
    pub b: Vec<f64>,
    /// Objective coefficients, length `n`.
    pub c: Vec<f64>,
}

/// Result of a revised-simplex run.
#[derive(Debug, Clone)]
pub struct RevisedSolution {
    /// The minimal objective value.
    pub objective: f64,
    /// Values of the structural variables (length `n`).
    pub x: Vec<f64>,
    /// Reduced cost of each structural variable at the optimum (zero
    /// for basic variables).
    pub reduced_costs: Vec<f64>,
    /// The optimal basis: one column index per row. Entries `≥ n` are
    /// artificial columns left basic (at zero) by redundant rows. Feed
    /// this to [`solve_sparse_from_basis`] to warm-start a re-solve
    /// after a right-hand-side change.
    pub basis: Vec<usize>,
    /// Total simplex pivots performed (both phases / dual pass).
    pub pivots: usize,
}

thread_local! {
    /// Chaos hook: `(delta, persistent)` — the next factorization build
    /// multiplies one LU entry by `1 + delta`. One-shot skews clear
    /// after the first application (the retry refactorization comes up
    /// clean); persistent skews re-apply every build, forcing the
    /// typed-error path.
    static LU_SKEW: Cell<Option<(f64, bool)>> = const { Cell::new(None) };
}

/// Arms the LU-skew chaos fault on this thread: the next factorization
/// has one factor entry multiplied by `1 + delta`. With
/// `persistent = false` the skew clears after one application, so the
/// solver's retry refactorization recovers; with `persistent = true`
/// every rebuild is skewed and the solve must surface
/// [`LpError::Numerical`]. Testing hook for `Fault::LpBasisDesync`.
pub fn inject_lu_skew(delta: f64, persistent: bool) {
    LU_SKEW.with(|c| c.set(Some((delta, persistent))));
}

/// Disarms any pending [`inject_lu_skew`] on this thread.
pub fn clear_lu_skew() {
    LU_SKEW.with(|c| c.set(None));
}

/// Takes the pending skew, re-arming it when persistent.
fn consume_lu_skew() -> Option<f64> {
    LU_SKEW.with(|c| {
        let pending = c.get();
        if let Some((delta, persistent)) = pending {
            if !persistent {
                c.set(None);
            }
            Some(delta)
        } else {
            None
        }
    })
}

/// LU factorization of a basis matrix: a column-singleton triangular
/// block plus a dense bump, in permuted form
/// `P_r · B · P_c = [U11 B12; 0 B22]`.
#[derive(Debug, Clone)]
struct Factorization {
    m: usize,
    /// Number of triangularized pivots (`k ≤ m`).
    k: usize,
    /// Basis slot → solve position (0..k triangular, k..m bump).
    pos_of_slot: Vec<usize>,
    slot_of_pos: Vec<usize>,
    /// Original row → solve position.
    pos_of_row: Vec<usize>,
    row_of_pos: Vec<usize>,
    /// `U11` column `t`: above-diagonal entries `(position < t, value)`.
    u_cols: Vec<Vec<(usize, f64)>>,
    u_diag: Vec<f64>,
    /// `B12` bump column `j`: entries `(position < k, value)`.
    b12: Vec<Vec<(usize, f64)>>,
    /// Dense LU of the `nb × nb` bump (row-major, L unit-diagonal in
    /// the strict lower triangle) with partial-pivot row swaps.
    nb: usize,
    lu: Vec<f64>,
    lu_piv: Vec<usize>,
}

impl Factorization {
    /// Factorizes the basis given each slot's column `(rows, values)`.
    /// Returns `None` when the basis is numerically singular.
    fn build(m: usize, cols: &[Vec<(usize, f64)>]) -> Option<Factorization> {
        debug_assert_eq!(cols.len(), m);
        // Active-count bookkeeping for the singleton sweep.
        let mut col_nnz: Vec<usize> = cols.iter().map(Vec::len).collect();
        let mut row_slots: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (s, col) in cols.iter().enumerate() {
            for &(r, _) in col {
                row_slots[r].push(s);
            }
        }
        let mut row_done = vec![false; m];
        let mut col_done = vec![false; m];
        let mut work: Vec<usize> = (0..m).filter(|&s| col_nnz[s] == 1).collect();
        // Pivot order: (row, slot) per triangular step.
        let mut order: Vec<(usize, usize)> = Vec::new();
        while let Some(s) = work.pop() {
            if col_done[s] || col_nnz[s] != 1 {
                continue; // stale worklist entry
            }
            let Some(&(r, v)) = cols[s].iter().find(|&&(r, _)| !row_done[r]) else {
                return None; // active count said 1 but no live row: singular
            };
            if v.abs() <= SING_TOL {
                continue; // leave for the pivoted dense bump
            }
            col_done[s] = true;
            row_done[r] = true;
            order.push((r, s));
            for &other in &row_slots[r] {
                if !col_done[other] {
                    col_nnz[other] -= 1;
                    if col_nnz[other] == 1 {
                        work.push(other);
                    }
                }
            }
        }
        let k = order.len();
        let nb = m - k;

        let mut pos_of_row = vec![usize::MAX; m];
        let mut pos_of_slot = vec![usize::MAX; m];
        for (t, &(r, s)) in order.iter().enumerate() {
            pos_of_row[r] = t;
            pos_of_slot[s] = t;
        }
        let mut next = k;
        for r in 0..m {
            if !row_done[r] {
                pos_of_row[r] = next;
                next += 1;
            }
        }
        debug_assert_eq!(next, m);
        next = k;
        for s in 0..m {
            if !col_done[s] {
                pos_of_slot[s] = next;
                next += 1;
            }
        }
        let mut row_of_pos = vec![0usize; m];
        let mut slot_of_pos = vec![0usize; m];
        for r in 0..m {
            row_of_pos[pos_of_row[r]] = r;
        }
        for s in 0..m {
            slot_of_pos[pos_of_slot[s]] = s;
        }

        // Scatter the columns into U11 / B12 / B22.
        let mut u_cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); k];
        let mut u_diag = vec![0.0; k];
        let mut b12: Vec<Vec<(usize, f64)>> = vec![Vec::new(); nb];
        let mut lu = vec![0.0; nb * nb];
        for s in 0..m {
            let cpos = pos_of_slot[s];
            for &(r, v) in &cols[s] {
                let rpos = pos_of_row[r];
                if cpos < k {
                    if rpos == cpos {
                        u_diag[cpos] = v;
                    } else {
                        debug_assert!(rpos < cpos, "triangular block must be upper");
                        u_cols[cpos].push((rpos, v));
                    }
                } else if rpos < k {
                    b12[cpos - k].push((rpos, v));
                } else {
                    lu[(rpos - k) * nb + (cpos - k)] = v;
                }
            }
        }

        // Dense LU of the bump with partial pivoting.
        let mut lu_piv = vec![0usize; nb];
        for c in 0..nb {
            let mut p = c;
            let mut pv = lu[c * nb + c].abs();
            for r in c + 1..nb {
                let v = lu[r * nb + c].abs();
                if v > pv {
                    pv = v;
                    p = r;
                }
            }
            if pv <= SING_TOL {
                return None;
            }
            lu_piv[c] = p;
            if p != c {
                for j in 0..nb {
                    lu.swap(c * nb + j, p * nb + j);
                }
            }
            let d = lu[c * nb + c];
            for r in c + 1..nb {
                let f = lu[r * nb + c] / d;
                lu[r * nb + c] = f;
                if f != 0.0 {
                    for j in c + 1..nb {
                        lu[r * nb + j] -= f * lu[c * nb + j];
                    }
                }
            }
        }

        let mut fact = Factorization {
            m,
            k,
            pos_of_slot,
            slot_of_pos,
            pos_of_row,
            row_of_pos,
            u_cols,
            u_diag,
            b12,
            nb,
            lu,
            lu_piv,
        };
        if let Some(delta) = consume_lu_skew() {
            // Skew one factor entry — the residual self-check must
            // catch this, never the caller.
            if fact.k > 0 {
                fact.u_diag[0] *= 1.0 + delta;
            } else if fact.nb > 0 {
                fact.lu[0] *= 1.0 + delta;
            }
        }
        Some(fact)
    }

    /// Solves `B x = v` through the factorization alone (no etas).
    /// Input is indexed by original row; output by basis slot.
    fn solve(&self, v: &[f64]) -> Vec<f64> {
        let mut rp = vec![0.0; self.m];
        for r in 0..self.m {
            rp[self.pos_of_row[r]] = v[r];
        }
        self.solve_permuted(rp)
    }

    /// [`Self::solve`] for a right-hand side given as sparse
    /// `(row, value)` entries — skips densifying the input first.
    fn solve_from_entries<I>(&self, entries: I) -> Vec<f64>
    where
        I: IntoIterator<Item = (usize, f64)>,
    {
        let mut rp = vec![0.0; self.m];
        for (r, val) in entries {
            rp[self.pos_of_row[r]] += val;
        }
        self.solve_permuted(rp)
    }

    /// The shared tail of the forward solves: `rp` is the rhs already
    /// permuted to elimination order.
    fn solve_permuted(&self, mut rp: Vec<f64>) -> Vec<f64> {
        let (m, k, nb) = (self.m, self.k, self.nb);
        // Bump: B22 x2 = rp[k..], via P·B22 = L·U. The stored L
        // multipliers are in *final* row order (factorization swaps
        // whole rows, moving earlier multipliers along), so every row
        // swap must hit the rhs before forward substitution starts.
        let mut x2 = rp[k..].to_vec();
        for c in 0..nb {
            let p = self.lu_piv[c];
            if p != c {
                x2.swap(c, p);
            }
        }
        for c in 0..nb {
            // Forward-substitute L (unit diagonal) column-wise.
            let xc = x2[c];
            if xc != 0.0 {
                for r in c + 1..nb {
                    x2[r] -= self.lu[r * nb + c] * xc;
                }
            }
        }
        for c in (0..nb).rev() {
            x2[c] /= self.lu[c * nb + c];
            let xc = x2[c];
            if xc != 0.0 {
                for r in 0..c {
                    x2[r] -= self.lu[r * nb + c] * xc;
                }
            }
        }
        // Eliminated rows: rp[0..k] -= B12 · x2.
        for j in 0..nb {
            let xj = x2[j];
            if xj != 0.0 {
                for &(pos, val) in &self.b12[j] {
                    rp[pos] -= val * xj;
                }
            }
        }
        // Back-substitute the upper-triangular U11.
        for t in (0..k).rev() {
            let xt = rp[t] / self.u_diag[t];
            rp[t] = xt;
            if xt != 0.0 {
                for &(pos, val) in &self.u_cols[t] {
                    rp[pos] -= val * xt;
                }
            }
        }
        // Scatter back to slot indexing.
        let mut out = vec![0.0; m];
        for t in 0..k {
            out[self.slot_of_pos[t]] = rp[t];
        }
        for j in 0..nb {
            out[self.slot_of_pos[k + j]] = x2[j];
        }
        out
    }

    /// Solves `Bᵀ y = c` through the factorization alone (no etas).
    /// Input is indexed by basis slot; output by original row.
    fn solve_transpose(&self, c: &[f64]) -> Vec<f64> {
        let (m, k, nb) = (self.m, self.k, self.nb);
        let mut cp = vec![0.0; m];
        for s in 0..m {
            cp[self.pos_of_slot[s]] = c[s];
        }
        // U11ᵀ y1 = cp[0..k]: forward substitution in elimination order
        // (row t of U11ᵀ is column t of U11).
        for t in 0..k {
            let mut acc = cp[t];
            for &(pos, val) in &self.u_cols[t] {
                acc -= val * cp[pos];
            }
            cp[t] = acc / self.u_diag[t];
        }
        // Bump rhs: cp[k..] − B12ᵀ y1.
        let mut r2 = vec![0.0; nb];
        for j in 0..nb {
            let mut acc = cp[k + j];
            for &(pos, val) in &self.b12[j] {
                acc -= val * cp[pos];
            }
            r2[j] = acc;
        }
        // B22ᵀ y2 = r2: with P·B22 = L·U, solve Uᵀ z = r2 (forward),
        // Lᵀ w = z (backward), y2 = Pᵀ w (swaps in reverse order).
        for c0 in 0..nb {
            let mut acc = r2[c0];
            for r in 0..c0 {
                acc -= self.lu[r * nb + c0] * r2[r];
            }
            r2[c0] = acc / self.lu[c0 * nb + c0];
        }
        for c0 in (0..nb).rev() {
            let mut acc = r2[c0];
            for r in c0 + 1..nb {
                acc -= self.lu[r * nb + c0] * r2[r];
            }
            r2[c0] = acc;
        }
        for c0 in (0..nb).rev() {
            let p = self.lu_piv[c0];
            if p != c0 {
                r2.swap(c0, p);
            }
        }
        // Assemble y indexed by original row.
        let mut y = vec![0.0; m];
        for t in 0..k {
            y[self.row_of_pos[t]] = cp[t];
        }
        for j in 0..nb {
            y[self.row_of_pos[k + j]] = r2[j];
        }
        y
    }
}

/// A product-form eta factor: basis slot `r` replaced by a column whose
/// pivot entry is `wr` and whose off-pivot nonzeros are `nz` (indexed by
/// slot, ascending, `r` excluded). FTRAN'd columns of block-structured
/// bases are mostly exact zeros, so storing only the nonzeros keeps eta
/// application O(nnz) instead of O(m).
#[derive(Debug, Clone)]
struct Eta {
    r: usize,
    wr: f64,
    nz: Vec<(usize, f64)>,
}

/// The working state of a revised-simplex solve.
struct SparseSimplex<'a> {
    sf: &'a SparseStandardForm,
    m: usize,
    n: usize,
    /// Artificial column signs: artificial `i` is a singleton
    /// `sign(b_i)` in row `i`, so its initial value is `|b_i|`.
    art_sign: Vec<f64>,
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    fact: Factorization,
    etas: Vec<Eta>,
    /// Basic variable values, indexed by basis slot.
    x_b: Vec<f64>,
    /// Etas accumulated before a full refactorization.
    refactor_period: usize,
    /// Rotating start column for partial pricing.
    price_start: usize,
    budget: &'a Budget,
    pivots: usize,
    refactors: usize,
}

/// Partial-pricing block: columns scanned per sweep step before the
/// best negative reduced cost found so far is accepted. Only a full
/// empty sweep proves optimality, so this changes the pivot path but
/// never the answer.
const PRICE_BLOCK: usize = 64;

impl<'a> SparseSimplex<'a> {
    /// Column `j` of the extended matrix `[A | artificials]` as sparse
    /// entries.
    fn col_entries(&self, j: usize) -> Vec<(usize, f64)> {
        if j < self.n {
            let (rows, vals) = self.sf.a.col(j);
            rows.iter().copied().zip(vals.iter().copied()).collect()
        } else {
            vec![(j - self.n, self.art_sign[j - self.n])]
        }
    }

    /// `y · a_j` over the extended matrix.
    fn price_col(&self, j: usize, y: &[f64]) -> f64 {
        if j < self.n {
            self.sf.a.dot_col(j, y)
        } else {
            y[j - self.n] * self.art_sign[j - self.n]
        }
    }

    /// FTRAN of extended column `j`: `B⁻¹ a_j` (output by slot) without
    /// densifying the column first — the scatter goes straight into the
    /// factorization's permuted rhs.
    fn ftran_col(&self, j: usize) -> Vec<f64> {
        let mut x = if j < self.n {
            let (rows, vals) = self.sf.a.col(j);
            self.fact
                .solve_from_entries(rows.iter().copied().zip(vals.iter().copied()))
        } else {
            self.fact
                .solve_from_entries(std::iter::once((j - self.n, self.art_sign[j - self.n])))
        };
        self.apply_etas(&mut x);
        x
    }

    /// Applies the eta file in order to an FTRAN intermediate.
    fn apply_etas(&self, x: &mut [f64]) {
        for eta in &self.etas {
            let xr = x[eta.r] / eta.wr;
            if xr != 0.0 {
                for &(i, wi) in &eta.nz {
                    x[i] -= wi * xr;
                }
            }
            x[eta.r] = xr;
        }
    }

    /// BTRAN: `y = B⁻ᵀ c` (input by slot, output by row), through the
    /// eta file in reverse then the factorization transpose.
    fn btran(&self, c: &[f64]) -> Vec<f64> {
        let mut z = c.to_vec();
        for eta in self.etas.iter().rev() {
            let mut acc = z[eta.r];
            for &(i, wi) in &eta.nz {
                acc -= wi * z[i];
            }
            z[eta.r] = acc / eta.wr;
        }
        self.fact.solve_transpose(&z)
    }

    /// Rebuilds the factorization from the current basis, clears the
    /// eta file, recomputes `x_B`, and verifies the residual
    /// `‖b − B·x_B‖∞ / (1 + ‖b‖∞)`. One silent retry (recovers a
    /// one-shot skew or accumulated drift); persistent failure is
    /// [`LpError::Numerical`].
    fn refactorize(&mut self) -> Result<(), LpError> {
        for attempt in 0..2 {
            let cols: Vec<Vec<(usize, f64)>> =
                self.basis.iter().map(|&j| self.col_entries(j)).collect();
            let Some(fact) = Factorization::build(self.m, &cols) else {
                sag_obs::counter("lp.numerical_failures", 1);
                return Err(LpError::Numerical("basis factorization is singular".into()));
            };
            self.fact = fact;
            self.etas.clear();
            self.refactors += 1;
            self.x_b = self.fact.solve(&self.sf.b);
            if self.residual_ok() {
                return Ok(());
            }
            if attempt == 0 && sag_obs::enabled() {
                sag_obs::counter("lp.refactor_retries", 1);
            }
        }
        sag_obs::counter("lp.numerical_failures", 1);
        Err(LpError::Numerical(
            "basis residual check failed after refactorization (desynced factors?)".into(),
        ))
    }

    /// `‖b − B·x_B‖∞ / (1 + ‖b‖∞) ≤ RESIDUAL_TOL` against the *true*
    /// basis columns — independent of the factorization under test.
    fn residual_ok(&self) -> bool {
        let mut r = self.sf.b.clone();
        for (slot, &j) in self.basis.iter().enumerate() {
            let xv = self.x_b[slot];
            if xv != 0.0 {
                for &(row, val) in &self.col_entries(j) {
                    r[row] -= val * xv;
                }
            }
        }
        let bnorm = self.sf.b.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
        let rnorm = r.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
        rnorm.is_finite() && rnorm / (1.0 + bnorm) <= RESIDUAL_TOL
    }

    /// Applies one pivot: entering column `q` with FTRAN'd direction
    /// `w`, leaving slot `p`. Refactorizes when the eta file is full.
    fn pivot(&mut self, p: usize, q: usize, w: Vec<f64>) -> Result<(), LpError> {
        let wr = w[p];
        let t = self.x_b[p] / wr;
        // Compress the FTRAN'd column to its off-pivot nonzeros while
        // updating x_B over the same entries.
        let mut nz = Vec::new();
        for (i, &wi) in w.iter().enumerate() {
            if wi != 0.0 && i != p {
                self.x_b[i] -= wi * t;
                nz.push((i, wi));
            }
        }
        self.x_b[p] = t;
        if self.basis[p] < self.n {
            self.in_basis[self.basis[p]] = false;
        }
        self.basis[p] = q;
        if q < self.n {
            self.in_basis[q] = true;
        }
        self.etas.push(Eta { r: p, wr, nz });
        self.pivots += 1;
        if self.etas.len() >= self.refactor_period {
            self.refactorize()?;
        }
        Ok(())
    }

    /// Runs primal simplex iterations on the given costs until optimal.
    /// Only structural columns may enter (artificials can leave, never
    /// re-enter — standard column dropping).
    fn run_primal(&mut self, costs: &[f64]) -> Result<(), LpError> {
        let max_iters = 50 * (self.m + self.n) + 1000;
        let bland_after = 5 * (self.m + self.n);
        let mut c_b = vec![0.0; self.m];
        for iter in 0..max_iters {
            if iter & BUDGET_POLL_MASK == 0 {
                self.budget.check_interrupt()?;
            }
            // Pricing: y = B⁻ᵀ c_B, then d_j = c_j − y·a_j.
            for (slot, &j) in self.basis.iter().enumerate() {
                c_b[slot] = costs[j];
            }
            let y = self.btran(&c_b);
            let entering = if iter < bland_after {
                // Partial pricing: scan rotating blocks and take the most
                // negative reduced cost from the first block holding one,
                // instead of re-pricing every column each iteration.
                let mut best: Option<(usize, f64)> = None;
                let mut pos = self.price_start.min(self.n.saturating_sub(1));
                let mut scanned = 0;
                while scanned < self.n {
                    let block_end = (scanned + PRICE_BLOCK).min(self.n);
                    while scanned < block_end {
                        let j = pos;
                        pos += 1;
                        if pos == self.n {
                            pos = 0;
                        }
                        scanned += 1;
                        if self.in_basis[j] {
                            continue;
                        }
                        let d = costs[j] - self.price_col(j, &y);
                        if d < -TOL && best.is_none_or(|(_, bv)| d < bv) {
                            best = Some((j, d));
                        }
                    }
                    if best.is_some() {
                        self.price_start = pos;
                        break;
                    }
                }
                best.map(|(j, _)| j)
            } else {
                (0..self.n).find(|&j| !self.in_basis[j] && costs[j] - self.price_col(j, &y) < -TOL)
            };
            let Some(q) = entering else {
                return Ok(());
            };
            let w = self.ftran_col(q);
            // Minimum-ratio test, Bland tie-break on the basis index.
            let mut leave: Option<(usize, f64)> = None;
            for i in 0..self.m {
                if w[i] > TOL {
                    let ratio = self.x_b[i] / w[i];
                    let better = match leave {
                        None => true,
                        Some((li, lr)) => {
                            ratio < lr - TOL
                                || ((ratio - lr).abs() <= TOL && self.basis[i] < self.basis[li])
                        }
                    };
                    if better {
                        leave = Some((i, ratio));
                    }
                }
            }
            let Some((p, _)) = leave else {
                return Err(LpError::Unbounded);
            };
            self.pivot(p, q, w)?;
        }
        sag_obs::counter("lp.iteration_limits", 1);
        Err(LpError::IterationLimit)
    }

    /// Runs dual simplex iterations (basis dual feasible, `x_B` may be
    /// negative) until primal feasible.
    fn run_dual(&mut self, costs: &[f64]) -> Result<(), LpError> {
        let max_iters = 50 * (self.m + self.n) + 1000;
        let bland_after = 5 * (self.m + self.n);
        for iter in 0..max_iters {
            if iter & BUDGET_POLL_MASK == 0 {
                self.budget.check_interrupt()?;
            }
            // Leaving row: most negative basic value (Bland: first, by
            // basis index, once past the burn-in).
            let p = if iter < bland_after {
                let mut best: Option<(usize, f64)> = None;
                for i in 0..self.m {
                    if self.x_b[i] < -TOL && best.is_none_or(|(_, v)| self.x_b[i] < v) {
                        best = Some((i, self.x_b[i]));
                    }
                }
                best.map(|(i, _)| i)
            } else {
                let mut best: Option<usize> = None;
                for i in 0..self.m {
                    if self.x_b[i] < -TOL && best.is_none_or(|bi| self.basis[i] < self.basis[bi]) {
                        best = Some(i);
                    }
                }
                best
            };
            let Some(p) = p else {
                return Ok(());
            };
            // Row p of B⁻¹A over nonbasic structurals: z = B⁻ᵀ e_p.
            let mut e_p = vec![0.0; self.m];
            e_p[p] = 1.0;
            let z = self.btran(&e_p);
            // Current reduced costs (recomputed — dual pivots are few).
            let c_b: Vec<f64> = self.basis.iter().map(|&j| costs[j]).collect();
            let y = self.btran(&c_b);
            let mut enter: Option<(usize, f64)> = None;
            for j in 0..self.n {
                if self.in_basis[j] {
                    continue;
                }
                let alpha = self.price_col(j, &z);
                if alpha < -TOL {
                    let d = (costs[j] - self.price_col(j, &y)).max(0.0);
                    let ratio = d / -alpha;
                    let better = match enter {
                        None => true,
                        Some((ej, er)) => ratio < er - TOL || ((ratio - er).abs() <= TOL && j < ej),
                    };
                    if better {
                        enter = Some((j, ratio));
                    }
                }
            }
            let Some((q, _)) = enter else {
                // No column can repair the negative row: primal
                // infeasible (a valid branch-and-bound prune).
                return Err(LpError::Infeasible);
            };
            let w = self.ftran_col(q);
            if w[p].abs() <= TOL {
                sag_obs::counter("lp.numerical_failures", 1);
                return Err(LpError::Numerical(
                    "dual pivot element vanished (stale factors?)".into(),
                ));
            }
            self.pivot(p, q, w)?;
        }
        sag_obs::counter("lp.iteration_limits", 1);
        Err(LpError::IterationLimit)
    }

    /// Pivots still-basic artificials out onto any structural column
    /// with a nonzero in their row (degenerate pivots); rows with no
    /// such column are redundant and keep their artificial pinned at
    /// zero (it can never re-enter or change value).
    fn pivot_out_artificials(&mut self) -> Result<(), LpError> {
        for p in 0..self.m {
            if self.basis[p] < self.n {
                continue;
            }
            let mut e_p = vec![0.0; self.m];
            e_p[p] = 1.0;
            let z = self.btran(&e_p);
            let candidate =
                (0..self.n).find(|&j| !self.in_basis[j] && self.price_col(j, &z).abs() > 1e-9);
            if let Some(q) = candidate {
                let w = self.ftran_col(q);
                if w[p].abs() > TOL {
                    self.pivot(p, q, w)?;
                }
            }
        }
        Ok(())
    }

    /// Extracts the final answer from a *fresh* factorization of the
    /// terminal basis, re-verifying optimality; returns `None` when the
    /// recomputed reduced costs or feasibility demand more pivoting.
    fn extract(&mut self) -> Result<Option<RevisedSolution>, LpError> {
        self.refactorize()?;
        // Primal feasibility of the recomputed basics.
        if self.x_b.iter().any(|&v| v < -OPT_TOL) {
            return Ok(None);
        }
        let c_b: Vec<f64> = self
            .basis
            .iter()
            .map(|&j| if j < self.n { self.sf.c[j] } else { 0.0 })
            .collect();
        let y = self.btran(&c_b);
        let mut reduced_costs = vec![0.0; self.n];
        for j in 0..self.n {
            if !self.in_basis[j] {
                reduced_costs[j] = self.sf.c[j] - self.price_col(j, &y);
                if reduced_costs[j] < -OPT_TOL {
                    return Ok(None);
                }
            }
        }
        let mut x = vec![0.0; self.n];
        for (slot, &j) in self.basis.iter().enumerate() {
            if j < self.n {
                x[j] = self.x_b[slot];
            }
        }
        let objective = self.sf.c.iter().zip(&x).map(|(c, v)| c * v).sum();
        Ok(Some(RevisedSolution {
            objective,
            x,
            reduced_costs,
            basis: self.basis.clone(),
            pivots: self.pivots,
        }))
    }
}

/// Validates dimensions and finiteness of a sparse standard form.
fn validate(sf: &SparseStandardForm) -> Result<(usize, usize), LpError> {
    let m = sf.a.nrows();
    let n = sf.a.ncols();
    if sf.b.len() != m {
        return Err(LpError::Malformed(format!(
            "b has {} entries, expected {m}",
            sf.b.len()
        )));
    }
    if sf.c.len() != n {
        return Err(LpError::Malformed(format!(
            "c has {} entries, expected {n}",
            sf.c.len()
        )));
    }
    if let Some(i) = sf.b.iter().position(|v| !v.is_finite()) {
        return Err(LpError::Malformed(format!("b[{i}] is not finite")));
    }
    if let Some(j) = sf.c.iter().position(|v| !v.is_finite()) {
        return Err(LpError::Malformed(format!("c[{j}] is not finite")));
    }
    Ok((m, n))
}

/// The default eta-file length between full refactorizations.
pub const DEFAULT_REFACTOR_PERIOD: usize = 64;

/// Builds the solver state around an initial basis. `refactor_period`
/// is clamped to ≥ 1.
fn make_solver<'a>(
    sf: &'a SparseStandardForm,
    m: usize,
    n: usize,
    basis: Vec<usize>,
    budget: &'a Budget,
    refactor_period: usize,
) -> Result<SparseSimplex<'a>, LpError> {
    let art_sign: Vec<f64> =
        sf.b.iter()
            .map(|&v| if v < 0.0 { -1.0 } else { 1.0 })
            .collect();
    let mut in_basis = vec![false; n];
    for &j in &basis {
        if j < n {
            in_basis[j] = true;
        }
    }
    let mut solver = SparseSimplex {
        sf,
        m,
        n,
        art_sign,
        basis,
        in_basis,
        fact: Factorization {
            m: 0,
            k: 0,
            pos_of_slot: Vec::new(),
            slot_of_pos: Vec::new(),
            pos_of_row: Vec::new(),
            row_of_pos: Vec::new(),
            u_cols: Vec::new(),
            u_diag: Vec::new(),
            b12: Vec::new(),
            nb: 0,
            lu: Vec::new(),
            lu_piv: Vec::new(),
        },
        etas: Vec::new(),
        x_b: Vec::new(),
        refactor_period: refactor_period.max(1),
        price_start: 0,
        budget,
        pivots: 0,
        refactors: 0,
    };
    solver.refactorize()?;
    Ok(solver)
}

/// Solves a sparse standard-form LP with the revised simplex
/// (two-phase primal, unlimited budget).
///
/// # Errors
/// As [`solve_sparse_with`].
pub fn solve_sparse(sf: &SparseStandardForm) -> Result<RevisedSolution, LpError> {
    solve_sparse_with(sf, &Budget::unlimited())
}

/// [`solve_sparse`] under a cooperative [`Budget`], polled every few
/// pivots.
///
/// # Errors
/// [`LpError::Infeasible`] / [`LpError::Unbounded`] /
/// [`LpError::IterationLimit`] / [`LpError::Malformed`] as the dense
/// core; [`LpError::Cancelled`] when the budget trips; and
/// [`LpError::Numerical`] when the basis factorization is singular or
/// fails its residual self-check twice.
pub fn solve_sparse_with(
    sf: &SparseStandardForm,
    budget: &Budget,
) -> Result<RevisedSolution, LpError> {
    solve_sparse_with_period(sf, budget, DEFAULT_REFACTOR_PERIOD)
}

/// [`solve_sparse_with`] with an explicit refactorization cadence —
/// exposed so the differential rig can assert the reported objective is
/// bit-stable across cadences (1 refactorizes after every pivot).
///
/// # Errors
/// As [`solve_sparse_with`].
pub fn solve_sparse_with_period(
    sf: &SparseStandardForm,
    budget: &Budget,
    refactor_period: usize,
) -> Result<RevisedSolution, LpError> {
    let (m, n) = validate(sf)?;
    // Crash basis: zero-cost structural singleton columns whose sign
    // matches their row's rhs can start basic (value b_i/a ≥ 0); the
    // rest of the rows get signed artificials (value |b_i|).
    let mut crash: Vec<Option<usize>> = vec![None; m];
    for j in 0..n {
        if sf.c[j] != 0.0 {
            continue;
        }
        let (rows, vals) = sf.a.col(j);
        if rows.len() != 1 {
            continue;
        }
        let (i, v) = (rows[0], vals[0]);
        if crash[i].is_some() || v.abs() <= TOL {
            continue;
        }
        if sf.b[i] == 0.0 || (v > 0.0) == (sf.b[i] > 0.0) {
            crash[i] = Some(j);
        }
    }
    let basis: Vec<usize> = (0..m).map(|i| crash[i].unwrap_or(n + i)).collect();
    let mut solver = make_solver(sf, m, n, basis, budget, refactor_period)?;

    // ---- Phase 1: minimise the artificial mass. ----
    if solver.basis.iter().any(|&j| j >= n) {
        let mut costs = vec![0.0; n + m];
        for j in n..n + m {
            costs[j] = 1.0;
        }
        solver.run_primal(&costs)?;
        let art_mass: f64 = solver
            .basis
            .iter()
            .zip(&solver.x_b)
            .filter(|&(&j, _)| j >= n)
            .map(|(_, &v)| v.max(0.0))
            .sum();
        if art_mass > 1e-7 {
            flush_obs(&solver, false);
            return Err(LpError::Infeasible);
        }
        solver.pivot_out_artificials()?;
    }

    // ---- Phase 2: the true objective. ----
    let mut costs = vec![0.0; n + m];
    costs[..n].copy_from_slice(&sf.c);
    let out = finish_primal(&mut solver, &costs);
    flush_obs(&solver, matches!(out, Err(LpError::Cancelled)));
    out
}

/// Runs phase-2 primal to optimality, extracting through a fresh
/// factorization; resumes pivoting when the recomputed reduced costs
/// disagree (bounded by the phase iteration caps).
fn finish_primal(
    solver: &mut SparseSimplex<'_>,
    costs: &[f64],
) -> Result<RevisedSolution, LpError> {
    for _ in 0..4 {
        solver.run_primal(costs)?;
        if let Some(sol) = solver.extract()? {
            return Ok(sol);
        }
    }
    Err(LpError::IterationLimit)
}

/// Warm-starts a solve from a known basis via the **dual simplex**: the
/// basis must come from an optimal solve of a problem with the same
/// matrix `A` and costs `c` (only `b` changed — e.g. a branch-and-bound
/// bound tightening). Such a basis stays dual feasible, so the dual
/// simplex repairs primal feasibility in a handful of pivots instead of
/// re-running both phases.
///
/// # Errors
/// [`LpError::Numerical`] when the basis cannot seed a warm start
/// (wrong length, contains artificials, singular factorization, or not
/// dual feasible) — callers fall back to a cold [`solve_sparse_with`];
/// [`LpError::Infeasible`] is a *trusted* proof that the new `b` admits
/// no solution. Other variants as [`solve_sparse_with`].
pub fn solve_sparse_from_basis(
    sf: &SparseStandardForm,
    basis: &[usize],
    budget: &Budget,
) -> Result<RevisedSolution, LpError> {
    solve_sparse_from_basis_with_period(sf, basis, budget, DEFAULT_REFACTOR_PERIOD)
}

/// [`solve_sparse_from_basis`] with an explicit refactorization
/// cadence.
///
/// # Errors
/// As [`solve_sparse_from_basis`].
pub fn solve_sparse_from_basis_with_period(
    sf: &SparseStandardForm,
    basis: &[usize],
    budget: &Budget,
    refactor_period: usize,
) -> Result<RevisedSolution, LpError> {
    let (m, n) = validate(sf)?;
    if basis.len() != m || basis.iter().any(|&j| j >= n) {
        return Err(LpError::Numerical(
            "warm-start basis has the wrong shape or contains artificials".into(),
        ));
    }
    let mut seen = vec![false; n];
    for &j in basis {
        if seen[j] {
            return Err(LpError::Numerical(
                "warm-start basis repeats a column".into(),
            ));
        }
        seen[j] = true;
    }
    let mut solver = make_solver(sf, m, n, basis.to_vec(), budget, refactor_period)?;
    // Dual feasibility: the parent's optimal reduced costs must carry
    // over (same A, same c). A materially negative one means the basis
    // is not from a matching problem — fall back cold.
    let c_b: Vec<f64> = solver.basis.iter().map(|&j| sf.c[j]).collect();
    let y = solver.btran(&c_b);
    for j in 0..n {
        if !solver.in_basis[j] && sf.c[j] - solver.price_col(j, &y) < -OPT_TOL {
            flush_obs(&solver, false);
            return Err(LpError::Numerical(
                "warm-start basis is not dual feasible".into(),
            ));
        }
    }
    let mut costs = vec![0.0; n + m];
    costs[..n].copy_from_slice(&sf.c);
    let out = finish_dual(&mut solver, &costs);
    flush_obs(&solver, matches!(out, Err(LpError::Cancelled)));
    out
}

/// Runs the dual simplex to primal feasibility, extracting through a
/// fresh factorization; resumes (dual for feasibility, primal for
/// optimality) when the recomputed state disagrees.
fn finish_dual(solver: &mut SparseSimplex<'_>, costs: &[f64]) -> Result<RevisedSolution, LpError> {
    for _ in 0..4 {
        solver.run_dual(costs)?;
        // Rarely, refreshed numerics reveal residual dual infeasibility;
        // a primal clean-up pass restores it before extraction.
        solver.run_primal(costs)?;
        if let Some(sol) = solver.extract()? {
            return Ok(sol);
        }
    }
    Err(LpError::IterationLimit)
}

/// One observability flush per solve; the pivot loops stay
/// uninstrumented.
fn flush_obs(solver: &SparseSimplex<'_>, cancelled: bool) {
    if sag_obs::enabled() {
        sag_obs::counter("lp.sparse_solves", 1);
        sag_obs::counter("lp.sparse_pivots", solver.pivots as u64);
        sag_obs::counter("lp.sparse_refactors", solver.refactors as u64);
        if cancelled {
            sag_obs::counter("lp.budget_exhausted", 1);
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn csc(nrows: usize, ncols: usize, t: &[(usize, usize, f64)]) -> CscMatrix {
        CscMatrix::from_triplets(nrows, ncols, t).unwrap()
    }

    #[test]
    fn trivial_equality() {
        // min x  s.t. x = 5.
        let sf = SparseStandardForm {
            a: csc(1, 1, &[(0, 0, 1.0)]),
            b: vec![5.0],
            c: vec![1.0],
        };
        let s = solve_sparse(&sf).unwrap();
        assert!((s.objective - 5.0).abs() < 1e-9);
        assert!((s.x[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn classic_lp_matches_dense() {
        // min -3x - 5y s.t. x + s1 = 4; 2y + s2 = 12; 3x + 2y + s3 = 18.
        let sf = SparseStandardForm {
            a: csc(
                3,
                5,
                &[
                    (0, 0, 1.0),
                    (2, 0, 3.0),
                    (1, 1, 2.0),
                    (2, 1, 2.0),
                    (0, 2, 1.0),
                    (1, 3, 1.0),
                    (2, 4, 1.0),
                ],
            ),
            b: vec![4.0, 12.0, 18.0],
            c: vec![-3.0, -5.0, 0.0, 0.0, 0.0],
        };
        let s = solve_sparse(&sf).unwrap();
        assert!((s.objective + 36.0).abs() < 1e-9);
        assert!((s.x[0] - 2.0).abs() < 1e-9);
        assert!((s.x[1] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn negative_rhs_allowed() {
        // min x  s.t. -x = -5  ⇒ x = 5 (the dense core would reject
        // this b; the sparse form must not).
        let sf = SparseStandardForm {
            a: csc(1, 1, &[(0, 0, -1.0)]),
            b: vec![-5.0],
            c: vec![1.0],
        };
        let s = solve_sparse(&sf).unwrap();
        assert!((s.x[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_and_unbounded() {
        let sf = SparseStandardForm {
            a: csc(2, 1, &[(0, 0, 1.0), (1, 0, 1.0)]),
            b: vec![1.0, 2.0],
            c: vec![1.0],
        };
        assert_eq!(solve_sparse(&sf).unwrap_err(), LpError::Infeasible);
        let sf = SparseStandardForm {
            a: csc(1, 2, &[(0, 0, 1.0), (0, 1, -1.0)]),
            b: vec![0.0],
            c: vec![-1.0, 0.0],
        };
        assert_eq!(solve_sparse(&sf).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn redundant_rows_ok() {
        let sf = SparseStandardForm {
            a: csc(2, 2, &[(0, 0, 1.0), (1, 0, 1.0), (0, 1, 1.0), (1, 1, 1.0)]),
            b: vec![2.0, 2.0],
            c: vec![1.0, 0.0],
        };
        let s = solve_sparse(&sf).unwrap();
        assert!(s.objective.abs() < 1e-9);
        assert!((s.x[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn beale_cycling_example_terminates() {
        // Beale (1955): the classic Dantzig-cycling LP. In standard
        // form: min -0.75x4 + 150x5 - 0.02x6 + 6x7 with the three
        // equality rows below; optimum -0.05. Bland's rule must
        // terminate without any Budget deadline, in a bounded number of
        // pivots.
        let sf = SparseStandardForm {
            a: csc(
                3,
                7,
                &[
                    (0, 0, 1.0),
                    (1, 1, 1.0),
                    (2, 2, 1.0),
                    (0, 3, 0.25),
                    (1, 3, 0.5),
                    (2, 3, 0.0),
                    (0, 4, -60.0),
                    (1, 4, -90.0),
                    (2, 4, 0.0),
                    (0, 5, -0.04),
                    (1, 5, -0.02),
                    (2, 5, 1.0),
                    (0, 6, 9.0),
                    (1, 6, 3.0),
                    (2, 6, 0.0),
                ],
            ),
            b: vec![0.0, 0.0, 1.0],
            c: vec![0.0, 0.0, 0.0, -0.75, 150.0, -0.02, 6.0],
        };
        let s = solve_sparse(&sf).unwrap();
        assert!(
            (s.objective + 0.05).abs() < 1e-9,
            "objective {}",
            s.objective
        );
        // Bounded pivot work: far under the iteration cap, no budget.
        assert!(s.pivots < 100, "pivots {}", s.pivots);
    }

    #[test]
    fn refactor_every_pivot_same_objective() {
        let sf = SparseStandardForm {
            a: csc(
                2,
                4,
                &[
                    (0, 0, 2.0),
                    (0, 1, 1.0),
                    (1, 1, 3.0),
                    (1, 2, 1.0),
                    (0, 3, 1.0),
                ],
            ),
            b: vec![4.0, 6.0],
            c: vec![1.0, 2.0, 0.5, 0.0],
        };
        let every = solve_sparse_with_period(&sf, &Budget::unlimited(), 1).unwrap();
        let rare = solve_sparse_with_period(&sf, &Budget::unlimited(), 64).unwrap();
        assert_eq!(every.objective.to_bits(), rare.objective.to_bits());
    }

    #[test]
    fn warm_start_after_rhs_change() {
        // Optimal basis for b, re-solved after tightening b: the dual
        // simplex must land on the same answer a cold solve finds.
        let a = csc(
            2,
            4,
            &[
                (0, 0, 1.0),
                (1, 0, 1.0),
                (0, 1, 1.0),
                (0, 2, 1.0),
                (1, 3, 1.0),
            ],
        );
        let cold0 = solve_sparse(&SparseStandardForm {
            a: a.clone(),
            b: vec![3.0, 2.0],
            c: vec![1.0, 0.2, 0.0, 0.0],
        })
        .unwrap();
        let tightened = SparseStandardForm {
            a,
            b: vec![3.0, 1.0],
            c: vec![1.0, 0.2, 0.0, 0.0],
        };
        let warm = solve_sparse_from_basis(&tightened, &cold0.basis, &Budget::unlimited()).unwrap();
        let cold = solve_sparse(&tightened).unwrap();
        assert!(
            (warm.objective - cold.objective).abs() < 1e-9,
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
    }

    #[test]
    fn warm_start_rejects_bad_basis() {
        let sf = SparseStandardForm {
            a: csc(1, 2, &[(0, 0, 1.0), (0, 1, 1.0)]),
            b: vec![1.0],
            c: vec![1.0, 2.0],
        };
        // Wrong length.
        assert!(matches!(
            solve_sparse_from_basis(&sf, &[0, 1], &Budget::unlimited()),
            Err(LpError::Numerical(_))
        ));
        // Repeated column.
        let sf2 = SparseStandardForm {
            a: csc(2, 3, &[(0, 0, 1.0), (1, 1, 1.0), (0, 2, 1.0)]),
            b: vec![1.0, 1.0],
            c: vec![0.0, 0.0, 1.0],
        };
        assert!(matches!(
            solve_sparse_from_basis(&sf2, &[0, 0], &Budget::unlimited()),
            Err(LpError::Numerical(_))
        ));
    }

    #[test]
    fn one_shot_skew_recovers_persistent_skew_errors() {
        let sf = SparseStandardForm {
            a: csc(1, 1, &[(0, 0, 1.0)]),
            b: vec![5.0],
            c: vec![1.0],
        };
        inject_lu_skew(0.5, false);
        let s = solve_sparse(&sf).unwrap();
        assert!((s.x[0] - 5.0).abs() < 1e-9, "one-shot skew must recover");
        inject_lu_skew(0.5, true);
        let err = solve_sparse(&sf).unwrap_err();
        clear_lu_skew();
        assert!(matches!(err, LpError::Numerical(_)), "got {err:?}");
    }

    #[test]
    fn expired_budget_cancels() {
        let sf = SparseStandardForm {
            a: csc(1, 1, &[(0, 0, 1.0)]),
            b: vec![5.0],
            c: vec![1.0],
        };
        let budget = Budget::unlimited().with_deadline(std::time::Duration::ZERO);
        assert_eq!(
            solve_sparse_with(&sf, &budget).unwrap_err(),
            LpError::Cancelled
        );
    }

    #[test]
    fn malformed_dimensions_rejected() {
        let sf = SparseStandardForm {
            a: csc(1, 1, &[(0, 0, 1.0)]),
            b: vec![1.0, 2.0],
            c: vec![1.0],
        };
        assert!(matches!(solve_sparse(&sf), Err(LpError::Malformed(_))));
        let sf = SparseStandardForm {
            a: csc(1, 1, &[(0, 0, 1.0)]),
            b: vec![f64::NAN],
            c: vec![1.0],
        };
        assert!(matches!(solve_sparse(&sf), Err(LpError::Malformed(_))));
    }
}
