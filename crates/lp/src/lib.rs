//! # sag-lp — linear programming and branch-and-bound ILP
//!
//! A self-contained dense two-phase simplex solver plus a binary/integer
//! branch-and-bound layer. This crate is the reproduction's substitute for
//! **Gurobi 5.0**, which the paper uses for its ILPQC (coverage with
//! quadratic SNR constraints, §III-A.1) and LPQC (power minimisation,
//! §III-A.2) benchmark formulations:
//!
//! * the LPQC becomes a true LP once the SS→RS assignment is fixed (the
//!   SNR constraint (3.9) is linear in the power vector), solved directly
//!   by [`LpProblem::solve`];
//! * the ILPQC is solved exactly in `sag-core` by combinatorial
//!   branch-and-bound whose lower bounds come from this crate's LP
//!   relaxation of the set-cover subproblem.
//!
//! # Example
//!
//! ```
//! use sag_lp::{LpProblem, Relation};
//!
//! // min x + 2y  s.t.  x + y ≥ 3,  y ≤ 2,  x,y ≥ 0.
//! let mut lp = LpProblem::minimize(2);
//! lp.set_objective(&[1.0, 2.0]);
//! lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 3.0);
//! lp.add_constraint(&[(1, 1.0)], Relation::Le, 2.0);
//! let sol = lp.solve().unwrap();
//! assert!((sol.objective - 3.0).abs() < 1e-9); // x = 3, y = 0
//! ```

#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod budget;
pub mod error;
pub mod ilp;
pub mod problem;
pub mod revised;
pub mod simplex;
pub mod sparse;

pub use backend::{push_backend_override, LpBackend};
pub use budget::{Budget, Spent};
pub use error::LpError;
pub use ilp::{IlpProblem, IlpSolution};
pub use problem::{LpProblem, LpSolution, LpSolutionDetailed, Relation, WarmStart};
pub use revised::{RevisedSolution, SparseStandardForm};
pub use simplex::TOL as SIMPLEX_TOL;
pub use sparse::{CscBuilder, CscMatrix, SparseError};
