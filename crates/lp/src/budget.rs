//! Cooperative resource budgets for the solvers.
//!
//! A [`Budget`] bundles the three ways a caller can bound a solve — a
//! wall-clock deadline, a branch-and-bound node cap, and a cooperative
//! cancellation flag — into one value that is threaded through the
//! simplex, the ILP layer, and (in `sag-core`) the ILPQC/SAMC/PRO
//! stages. Budgets are *cooperative*: solvers poll [`Budget::check`] at
//! loop boundaries and return a typed error instead of being preempted,
//! so a hit budget never leaves a tableau or search stack in a torn
//! state.
//!
//! [`Spent`] records what a (possibly aborted) solve actually consumed,
//! so degradation decisions upstream can be reported with evidence.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::LpError;

/// A cooperative resource budget: deadline + node cap + cancel flag.
///
/// The default budget is unlimited; constraints are opted into with the
/// builder-style `with_*` methods. Cloning a budget shares the
/// cancellation flag (an [`Arc`]), so one controller can cancel every
/// solver holding a clone.
///
/// # Example
/// ```
/// use std::time::Duration;
/// use sag_lp::budget::Budget;
///
/// let b = Budget::unlimited()
///     .with_deadline(Duration::from_millis(200))
///     .with_node_limit(10_000);
/// assert!(!b.is_unlimited());
/// assert!(b.check(0).is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    node_limit: Option<usize>,
    cancel: Option<Arc<AtomicBool>>,
    /// Shared node pool: when present, clones charge their node
    /// consumption here and the node cap is enforced against the pool
    /// total, so concurrent solvers draw from one allowance.
    pool: Option<Arc<AtomicUsize>>,
}

impl Budget {
    /// A budget with no constraints (the default).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Adds a wall-clock deadline `timeout` from now.
    pub fn with_deadline(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Adds a branch-and-bound node cap.
    pub fn with_node_limit(mut self, nodes: usize) -> Self {
        self.node_limit = Some(nodes);
        self
    }

    /// Attaches a cooperative cancellation flag; setting it to `true`
    /// makes every solver holding this budget stop at its next check.
    pub fn with_cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Re-anchors the deadline at an absolute instant. Unlike
    /// [`with_deadline`](Budget::with_deadline) this does not re-derive
    /// from "now", so a budget rebuilt for a later pipeline stage keeps
    /// the *same* wall-clock cutoff as its parent.
    pub fn with_deadline_until(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Attaches a fresh shared node pool. Clones of the returned budget
    /// (handed to concurrent workers) all charge the same counter via
    /// [`charge_nodes`](Budget::charge_nodes), so the node cap bounds
    /// their *combined* search effort rather than each worker's own.
    pub fn with_shared_node_pool(mut self) -> Self {
        self.pool = Some(Arc::new(AtomicUsize::new(0)));
        self
    }

    /// The absolute deadline, if one is configured.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The attached cancellation flag, if any (shared across clones).
    pub fn cancel_flag(&self) -> Option<Arc<AtomicBool>> {
        self.cancel.clone()
    }

    /// Charges `n` nodes to the shared pool and returns the pool total
    /// including this charge; `None` when no pool is attached (the
    /// caller then enforces the cap against its own local count).
    pub fn charge_nodes(&self, n: usize) -> Option<usize> {
        self.pool
            .as_ref()
            .map(|p| p.fetch_add(n, Ordering::Relaxed) + n)
    }

    /// Nodes charged to the shared pool so far, if one is attached.
    pub fn pool_spent(&self) -> Option<usize> {
        self.pool.as_ref().map(|p| p.load(Ordering::Relaxed))
    }

    /// `true` when no constraint is configured.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.node_limit.is_none() && self.cancel.is_none()
    }

    /// The configured node cap, if any.
    pub fn node_limit(&self) -> Option<usize> {
        self.node_limit
    }

    /// `true` once the cancellation flag has been raised.
    pub fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// `true` once the deadline has passed.
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Wall-clock time left before the deadline (`None` = no deadline).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Checks the deadline and the cancellation flag.
    ///
    /// # Errors
    /// [`LpError::Cancelled`] when the deadline has passed or the flag
    /// is raised.
    pub fn check_interrupt(&self) -> Result<(), LpError> {
        if self.cancelled() || self.expired() {
            sag_obs::counter("lp.budget_cancelled", 1);
            return Err(LpError::Cancelled);
        }
        Ok(())
    }

    /// Full check: interrupt state plus the node cap against `nodes`
    /// already spent.
    ///
    /// # Errors
    /// [`LpError::Cancelled`] on deadline/cancellation,
    /// [`LpError::NodeLimit`] when `nodes` has reached the cap.
    pub fn check(&self, nodes: usize) -> Result<(), LpError> {
        self.check_interrupt()?;
        if self.node_limit.is_some_and(|cap| nodes >= cap) {
            sag_obs::counter("lp.budget_node_limit", 1);
            return Err(LpError::NodeLimit);
        }
        Ok(())
    }
}

/// Resources a solve actually consumed, reported alongside both
/// successful outcomes and budget-exhaustion errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Spent {
    /// Branch-and-bound nodes explored (0 for pure LP / heuristics).
    pub nodes: usize,
    /// Wall-clock time consumed.
    pub elapsed: Duration,
}

impl std::fmt::Display for Spent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} nodes in {:.1?}", self.nodes, self.elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert!(b.check(usize::MAX - 1).is_ok());
        assert!(!b.cancelled());
        assert!(!b.expired());
        assert_eq!(b.remaining(), None);
    }

    #[test]
    fn node_limit_trips_at_cap() {
        let b = Budget::unlimited().with_node_limit(10);
        assert!(b.check(9).is_ok());
        assert_eq!(b.check(10), Err(LpError::NodeLimit));
        assert_eq!(b.node_limit(), Some(10));
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let b = Budget::unlimited().with_deadline(Duration::ZERO);
        assert!(b.expired());
        assert_eq!(b.check_interrupt(), Err(LpError::Cancelled));
        assert_eq!(b.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let b = Budget::unlimited().with_deadline(Duration::from_secs(3600));
        assert!(!b.expired());
        assert!(b.check(0).is_ok());
        assert!(b.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn cancel_flag_is_shared_across_clones() {
        let flag = Arc::new(AtomicBool::new(false));
        let b = Budget::unlimited().with_cancel_flag(Arc::clone(&flag));
        let clone = b.clone();
        assert!(clone.check_interrupt().is_ok());
        flag.store(true, Ordering::Relaxed);
        assert!(b.cancelled());
        assert_eq!(clone.check_interrupt(), Err(LpError::Cancelled));
    }

    #[test]
    fn shared_pool_is_charged_across_clones() {
        let b = Budget::unlimited()
            .with_node_limit(10)
            .with_shared_node_pool();
        let clone = b.clone();
        assert_eq!(b.charge_nodes(4), Some(4));
        assert_eq!(clone.charge_nodes(3), Some(7));
        assert_eq!(b.pool_spent(), Some(7));
        assert_eq!(clone.pool_spent(), Some(7));
        // Without a pool, charging is a no-op and reports nothing.
        let plain = Budget::unlimited();
        assert_eq!(plain.charge_nodes(5), None);
        assert_eq!(plain.pool_spent(), None);
    }

    #[test]
    fn deadline_until_keeps_the_absolute_cutoff() {
        let parent = Budget::unlimited().with_deadline(Duration::from_secs(3600));
        let at = parent.deadline().expect("deadline configured");
        let child = Budget::unlimited().with_deadline_until(at);
        assert_eq!(child.deadline(), Some(at));
        assert!(!child.expired());
        assert!(Budget::unlimited().deadline().is_none());
    }

    #[test]
    fn cancel_flag_accessor_shares_the_flag() {
        let flag = Arc::new(AtomicBool::new(false));
        let b = Budget::unlimited().with_cancel_flag(Arc::clone(&flag));
        let handle = b.cancel_flag().expect("flag attached");
        handle.store(true, Ordering::Relaxed);
        assert!(b.cancelled());
        assert!(Budget::unlimited().cancel_flag().is_none());
    }

    #[test]
    fn spent_displays_both_dimensions() {
        let s = Spent {
            nodes: 42,
            elapsed: Duration::from_millis(7),
        };
        let text = s.to_string();
        assert!(text.contains("42"));
        assert!(text.contains("nodes"));
    }
}
