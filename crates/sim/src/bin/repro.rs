//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p sag-sim --release --bin repro -- all --fast
//! cargo run -p sag-sim --release --bin repro -- fig3a fig4b table2
//! cargo run -p sag-sim --release --bin repro -- fig6 --csv out/
//! ```
//!
//! Flags: `--fast` (3 runs instead of 10), `--runs N`, `--csv DIR`
//! (also write each table as CSV into DIR).

use std::io::Write as _;

use sag_sim::experiments::{
    alpha_sweep, backends, channels, churn, fig3, fig45, fig6, fig7, ledger, mbmc_weights, scaling,
    snr_stress, table2,
};
use sag_sim::runner::{collect_stage_metrics, SweepConfig};
use sag_sim::table::Table;

const EXPERIMENTS: &[&str] = &[
    "fig3a",
    "fig3b",
    "fig3c",
    "fig3d",
    "fig3e",
    "fig4a",
    "fig4b",
    "fig4c",
    "fig4d",
    "fig5a",
    "fig5b",
    "fig5c",
    "fig5d",
    "fig6",
    "fig7a",
    "fig7b",
    "fig7c",
    "table2",
    "snr_stress",
    "alpha_sweep",
    "scaling",
    "mbmc_weights",
    "channels",
    "ledger",
    "churn",
    "churn_chaos",
    "backends",
];

fn main() {
    let obs = sag_obs::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trace") {
        run_trace(&args[1..]);
        return;
    }
    let mut config = SweepConfig::default();
    let mut csv_dir: Option<String> = None;
    let mut report_path: Option<String> = None;
    let mut picked: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fast" => config = SweepConfig { runs: 3, ..config },
            "--runs" => {
                i += 1;
                config.runs = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--runs needs a positive integer"));
            }
            "--threads" => {
                i += 1;
                config.threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a positive integer"));
            }
            "--csv" => {
                i += 1;
                csv_dir = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--csv needs a directory")),
                );
            }
            "--report" => {
                i += 1;
                report_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--report needs a file")),
                );
            }
            "--help" | "-h" => {
                usage();
                return;
            }
            name if EXPERIMENTS.contains(&name) || name == "all" => picked.push(name.to_string()),
            other => die(&format!("unknown argument '{other}' (try --help)")),
        }
        i += 1;
    }
    if picked.is_empty() {
        usage();
        return;
    }
    if picked.iter().any(|p| p == "all") {
        picked = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    let mut report = report_path.as_ref().map(|_| {
        format!(
            "# SAG reproduction report\n\n{} runs per point, base seed {}.\n\n",
            config.runs, config.base_seed
        )
    });
    for name in &picked {
        run_experiment(name, config, csv_dir.as_deref(), report.as_mut());
    }
    if let (Some(path), Some(contents)) = (report_path, report) {
        write_file(&path, &contents);
    }
    if let Some(session) = obs {
        let dropped = session.sink.dropped_events();
        if dropped > 0 {
            eprintln!("[repro] obs sink dropped {dropped} event(s)");
        }
    }
}

/// `repro trace FILE` — analyze one obs JSONL stream;
/// `repro trace OLD NEW` — additionally diff the two runs.
fn run_trace(args: &[String]) {
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    match files.as_slice() {
        [file] => {
            let report = sag_sim::trace::analyze_file(file)
                .unwrap_or_else(|e| die(&format!("cannot read {file}: {e}")));
            print!("{}", report.render());
        }
        [old_file, new_file] => {
            let old = sag_sim::trace::analyze_file(old_file)
                .unwrap_or_else(|e| die(&format!("cannot read {old_file}: {e}")));
            let new = sag_sim::trace::analyze_file(new_file)
                .unwrap_or_else(|e| die(&format!("cannot read {new_file}: {e}")));
            print!("{}", old.render());
            println!();
            print!("{}", new.render());
            println!();
            print!("{}", sag_sim::trace::diff(&old, &new));
        }
        _ => die("trace needs one JSONL file (report) or two (diff)"),
    }
}

fn run_experiment(
    name: &str,
    config: SweepConfig,
    csv_dir: Option<&str>,
    report: Option<&mut String>,
) {
    eprintln!("[repro] running {name} ({} runs/point)…", config.runs);
    let started = std::time::Instant::now();
    // Install a process-wide collector per experiment so pipeline stages
    // on sweep worker threads land in one aggregated time/work table.
    let ((), stages) = collect_stage_metrics(|| match name {
        "fig6" => {
            for dump in fig6::fig6(7) {
                let field = fig6::fig6_scenario(7).field;
                println!("{}", sag_sim::plot::render_topology(&dump, field));
                println!("{}", dump.to_text());
                if let Some(dir) = csv_dir {
                    let path = format!("{dir}/fig6_{}.csv", dump.name.replace('+', "_"));
                    write_file(&path, &dump.to_csv());
                }
            }
        }
        _ => {
            let table: Table = match name {
                "fig3a" => fig3::fig3a(config),
                "fig3b" => fig3::fig3b(config),
                "fig3c" => fig3::fig3c(config),
                "fig3d" => fig3::fig3d(config),
                "fig3e" => fig3::fig3e(config),
                "fig4a" => fig45::power_pro(500.0, config),
                "fig4b" => fig45::running_times(500.0, config),
                "fig4c" => fig45::connectivity(500.0, config),
                "fig4d" => fig45::power_ucpo(500.0, config),
                "fig5a" => fig45::power_pro(800.0, config),
                "fig5b" => fig45::running_times(800.0, config),
                "fig5c" => fig45::connectivity(800.0, config),
                "fig5d" => fig45::power_ucpo(800.0, config),
                "fig7a" => fig7::fig7(300.0, config),
                "fig7b" => fig7::fig7(500.0, config),
                "fig7c" => fig7::fig7(800.0, config),
                "table2" => table2::table2(config),
                "snr_stress" => snr_stress::snr_stress(config),
                "alpha_sweep" => alpha_sweep::alpha_sweep(config),
                "scaling" => scaling::scaling(config),
                "mbmc_weights" => mbmc_weights::mbmc_weights(config),
                "channels" => channels::channels(config),
                "ledger" => ledger::ledger(config),
                "churn" => churn::churn(config),
                "churn_chaos" => churn::churn_chaos(config),
                "backends" => backends::backends(config),
                _ => unreachable!("filtered by EXPERIMENTS"),
            };
            println!("{table}");
            if let Some(dir) = csv_dir {
                write_file(&format!("{dir}/{name}.csv"), &table.to_csv());
            }
            if let Some(report) = report {
                report.push_str(&table.to_markdown());
                report.push('\n');
            }
        }
    });
    // Stage tables go to stderr so the stdout tables/CSVs stay clean.
    if !stages.is_empty() {
        eprintln!("[repro] {name} stage summary:\n{stages}");
    }
    eprintln!(
        "[repro] {name} done in {:.1}s",
        started.elapsed().as_secs_f64()
    );
}

fn write_file(path: &str, contents: &str) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::File::create(path) {
        Ok(mut f) => {
            if let Err(e) = f.write_all(contents.as_bytes()) {
                eprintln!("[repro] failed to write {path}: {e}");
            } else {
                eprintln!("[repro] wrote {path}");
            }
        }
        Err(e) => eprintln!("[repro] failed to create {path}: {e}"),
    }
}

fn usage() {
    println!(
        "usage: repro [--fast] [--runs N] [--threads N] [--csv DIR] [--report FILE] <experiment>…"
    );
    println!("       repro trace FILE.jsonl [OLD.jsonl NEW.jsonl for a diff]");
    println!("experiments: all {}", EXPERIMENTS.join(" "));
    println!("env: SAG_THREADS=N  zone-parallel workers inside each pipeline solve");
    println!("     (orthogonal to --threads, which parallelises across sweep cells;");
    println!("      threads=1 and threads=N solves are byte-identical)");
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}
