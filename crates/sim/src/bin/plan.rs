//! `plan` — deployment planner CLI.
//!
//! Runs the full SAG pipeline on a scenario (random via flags, or loaded
//! from a snapshot written by the `topology_export` example) and prints
//! the deployment, its validation audit, an ASCII topology map and an
//! SNR heatmap.
//!
//! ```text
//! cargo run -p sag-sim --release --bin plan -- --users 20 --field 500 --seed 7
//! cargo run -p sag-sim --release --bin plan -- --load target/fig6/fig6_scenario.bin
//! cargo run -p sag-sim --release --bin plan -- --users 15 --map --heatmap
//! ```

use sag_core::model::Scenario;
use sag_core::resilience;
use sag_core::trace::run_sag_traced;
use sag_core::validate::validate_report;
use sag_sim::experiments::fig6::TopologyDump;
use sag_sim::gen::{BsLayout, ScenarioSpec};
use sag_sim::heatmap::SnrField;
use sag_sim::plot::render_topology;
use sag_sim::snapshot;

struct Args {
    spec: ScenarioSpec,
    seed: u64,
    load: Option<String>,
    map: bool,
    heatmap: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        spec: ScenarioSpec::default(),
        seed: 7,
        load: None,
        map: true,
        heatmap: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let num = |argv: &[String], i: usize, what: &str| -> f64 {
        argv.get(i)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| die(&format!("{what} needs a number")))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--users" => {
                i += 1;
                args.spec.n_subscribers = num(&argv, i, "--users") as usize;
            }
            "--field" => {
                i += 1;
                args.spec.field_size = num(&argv, i, "--field");
            }
            "--bs" => {
                i += 1;
                args.spec.n_base_stations = num(&argv, i, "--bs") as usize;
            }
            "--snr" => {
                i += 1;
                args.spec.snr_db = num(&argv, i, "--snr");
            }
            "--seed" => {
                i += 1;
                args.seed = num(&argv, i, "--seed") as u64;
            }
            "--corners" => args.spec.bs_layout = BsLayout::Corners,
            "--load" => {
                i += 1;
                args.load = Some(
                    argv.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--load needs a path")),
                );
            }
            "--map" => args.map = true,
            "--no-map" => args.map = false,
            "--heatmap" => args.heatmap = true,
            "--help" | "-h" => {
                println!(
                    "usage: plan [--users N] [--field F] [--bs N] [--snr DB] [--seed S] \
                     [--corners] [--load FILE] [--map|--no-map] [--heatmap]"
                );
                println!(
                    "env: SAG_THREADS=N  zone-parallel workers for the solve \
                     (deterministic: any N matches N=1 byte for byte)"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown argument '{other}' (try --help)")),
        }
        i += 1;
    }
    args
}

fn main() {
    let _obs = sag_obs::init_from_env();
    let args = parse_args();
    if args.load.is_none() {
        if args.spec.n_subscribers == 0 {
            die("--users must be at least 1");
        }
        if args.spec.n_base_stations == 0 {
            die("--bs must be at least 1");
        }
        if !(args.spec.field_size.is_finite() && args.spec.field_size > 0.0) {
            die("--field must be a positive number");
        }
    }
    let scenario: Scenario = match &args.load {
        Some(path) => {
            let bytes =
                std::fs::read(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
            snapshot::decode(bytes.as_slice())
                .unwrap_or_else(|e| die(&format!("cannot decode {path}: {e}")))
        }
        None => args.spec.build(args.seed),
    };

    println!(
        "scenario: {} subscribers, {} base stations, field {:.0}x{:.0}, beta {}",
        scenario.n_subscribers(),
        scenario.base_stations.len(),
        scenario.field.width(),
        scenario.field.height(),
        scenario.params.link.beta_db(),
    );

    let (report, trace) = match run_sag_traced(&scenario) {
        Ok(r) => r,
        Err(e) => die(&format!("pipeline failed: {e}")),
    };
    println!("pipeline trace:\n{trace}");
    println!("{report}");

    let audit = validate_report(&scenario, &report);
    println!("{audit}");
    if !audit.is_clean() {
        die("deployment failed validation");
    }

    let resilience = resilience::analyze(&scenario, &report.coverage, &report.plan);
    println!(
        "resilience: {}/{} relays are single points of failure ({:.0}% fragility)",
        resilience.critical_relays.len(),
        resilience.n_relays,
        100.0 * resilience.fragility
    );

    if args.map {
        let dump = TopologyDump {
            name: "deployment".to_string(),
            subscribers: scenario.subscriber_positions(),
            base_stations: scenario.base_station_positions(),
            coverage_relays: report.coverage.relays.clone(),
            connectivity_relays: report.plan.relays.clone(),
            links: report.plan.links(),
        };
        println!("{}", render_topology(&dump, scenario.field));
    }

    if args.heatmap {
        let cell = scenario.field.width() / 64.0;
        let field = SnrField::sample(
            &scenario,
            &report.coverage.relays,
            &report.lower_power.powers,
            cell,
        );
        let beta = scenario.params.link.beta();
        println!(
            "SNR field under PRO powers ({}% of the field above beta):",
            (100.0 * field.coverage_fraction(beta)).round()
        );
        println!("{}", field.render(-30.0, 30.0));
    }
}

fn die(msg: &str) -> ! {
    eprintln!("plan: {msg}");
    std::process::exit(2);
}
