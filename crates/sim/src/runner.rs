//! Parameter sweeps: every `(x, run)` cell evaluated in parallel across
//! seeds with `std::thread::scope` workers, aggregated into [`CellStats`].
//!
//! The paper averages 10 runs per plotted point; [`SweepConfig::runs`]
//! defaults to that. A run that returns `None` (infeasible — IAC/GAC do
//! this at tight SNR thresholds, Fig. 3(d)) is excluded from the mean and
//! surfaced in the cell's `feasible_runs`. A run that *panics* is
//! isolated with `catch_unwind` and surfaced in `failed_runs` — one
//! poisoned scenario never takes down a whole sweep.
//!
//! Execution is delegated to the batched engine in [`crate::batch`]
//! (structure-of-arrays lane batches, lock-free per-cell outcome
//! slots, cross-thread span seeding); [`sweep_multi`] is the
//! cache-oblivious entry point, [`crate::batch::sweep_multi_cached`]
//! the cache-aware one.

use std::error::Error;
use std::fmt;
use std::sync::OnceLock;

use crate::stats::CellStats;

/// Rejected sweep parameters (see [`SweepConfig::validated`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// `runs == 0`: every cell would be empty.
    ZeroRuns,
    /// `threads == 0`: no worker could make progress.
    ZeroThreads,
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::ZeroRuns => write!(f, "sweep config needs at least one run"),
            SweepError::ZeroThreads => write!(f, "sweep config needs at least one thread"),
        }
    }
}

impl Error for SweepError {}

/// Sweep parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepConfig {
    /// Runs (seeds) per x position; the paper uses 10.
    pub runs: usize,
    /// Base seed; run `r` at x-index `i` uses `base_seed + i·stride + r`
    /// with `stride = max(runs, 1000)` (see [`SweepConfig::seed`]).
    pub base_seed: u64,
    /// Maximum worker threads. The default respects `SAG_THREADS`
    /// (see [`SweepConfig::default`]).
    pub threads: usize,
}

impl Default for SweepConfig {
    /// The default thread count respects `SAG_THREADS` with the same
    /// semantics as `SagPipelineConfig`: `0` means all hardware
    /// threads, `N` means exactly `N`. When the variable is unset (or
    /// unparsable) the fallback is `min(hardware threads, 8)` — the
    /// historical literal 8 survives only as a cap, so single-thread
    /// hosts stop oversubscribing. The variable is read once per
    /// process.
    fn default() -> Self {
        SweepConfig {
            runs: 10,
            base_seed: 1,
            threads: default_threads(),
        }
    }
}

/// Resolves the `SAG_THREADS`-aware default worker count (read once).
fn default_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        match std::env::var("SAG_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(0) => hw,
            Some(n) => n,
            None => hw.min(8),
        }
    })
}

impl SweepConfig {
    /// A reduced configuration for quick smoke runs and benches.
    pub fn fast() -> Self {
        SweepConfig {
            runs: 3,
            ..Default::default()
        }
    }

    /// Result-returning construction: the non-panicking way to build a
    /// config from untrusted values.
    ///
    /// # Errors
    /// [`SweepError::ZeroRuns`] / [`SweepError::ZeroThreads`].
    pub fn new(runs: usize, base_seed: u64, threads: usize) -> Result<Self, SweepError> {
        SweepConfig {
            runs,
            base_seed,
            threads,
        }
        .validated()
    }

    /// Checks an already-built config (struct literals bypass
    /// [`SweepConfig::new`]).
    ///
    /// # Errors
    /// See [`SweepConfig::new`].
    pub fn validated(self) -> Result<Self, SweepError> {
        if self.runs == 0 {
            return Err(SweepError::ZeroRuns);
        }
        if self.threads == 0 {
            return Err(SweepError::ZeroThreads);
        }
        Ok(self)
    }

    /// The seed for x-index `i`, run `r`.
    ///
    /// The stride between x positions is `max(runs, 1000)`: identical to
    /// the historical fixed 1000 for every config with ≤ 1000 runs (so
    /// seeded golden outputs are stable), while configs beyond 1000 runs
    /// widen the stride instead of silently reusing seeds across x
    /// positions.
    pub fn seed(&self, i: usize, r: usize) -> u64 {
        let stride = (self.runs as u64).max(1000);
        self.base_seed + (i as u64) * stride + r as u64
    }
}

/// Runs `eval(x, seed)` for every x and seed, producing `n_metrics`
/// series of aggregated cells.
///
/// `eval` returns one `Option<f64>` per metric (all-or-nothing
/// feasibility is *not* assumed: a metric can be `None` while another is
/// measured, which Fig. 3 uses when only one solver fails).
///
/// Robustness: `n_metrics == 0` returns an empty vector; a config with
/// zero runs yields all-empty cells; a run whose `eval` panics or
/// returns the wrong metric arity is recorded as a *failed* run (all
/// metrics `None`, counted in [`CellStats::failed_runs`]) instead of
/// aborting the sweep.
pub fn sweep_multi<X, F>(
    xs: &[X],
    n_metrics: usize,
    config: SweepConfig,
    eval: F,
) -> Vec<Vec<CellStats>>
where
    X: Copy + Sync,
    F: Fn(X, u64) -> Vec<Option<f64>> + Sync,
{
    crate::batch::sweep_multi_cached(xs, n_metrics, config, |_ctx, x, seed| eval(x, seed))
}

/// Convenience wrapper for single-metric sweeps.
pub fn sweep<X, F>(xs: &[X], config: SweepConfig, eval: F) -> Vec<CellStats>
where
    X: Copy + Sync,
    F: Fn(X, u64) -> Option<f64> + Sync,
{
    sweep_multi(xs, 1, config, |x, seed| vec![eval(x, seed)])
        .pop()
        .expect("one metric requested")
}

/// Wall-clock seconds of a closure (used for the running-time figures).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Runs `f` with a process-wide [`sag_obs::Collector`] installed and
/// returns its result together with the aggregated per-stage
/// time/work summary. The collector is global, so pipeline stages
/// executed on [`sweep_multi`] worker threads are captured too; the
/// recorder is uninstalled before returning.
pub fn collect_stage_metrics<T>(f: impl FnOnce() -> T) -> (T, sag_obs::StageMetrics) {
    let collector = std::sync::Arc::new(sag_obs::Collector::default());
    let guard = sag_obs::install(collector.clone());
    let out = f();
    drop(guard);
    (out, collector.summary())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn default_threads_is_positive_and_env_capped() {
        let t = SweepConfig::default().threads;
        assert!(t >= 1);
        // Unset (or unparsable) SAG_THREADS keeps the historical 8
        // only as a *cap*, never as an oversubscribing floor.
        match std::env::var("SAG_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            None => assert!(t <= 8),
            Some(0) => {}
            Some(n) => assert_eq!(t, n),
        }
    }

    #[test]
    fn sweep_aggregates_all_cells() {
        let cfg = SweepConfig {
            runs: 4,
            base_seed: 0,
            threads: 3,
        };
        let cells = sweep(&[1.0f64, 2.0, 3.0], cfg, |x, _seed| Some(x * 2.0));
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[1].mean, Some(4.0));
        assert_eq!(cells[1].feasible_runs, 4);
    }

    #[test]
    fn seeds_are_distinct_per_cell() {
        let cfg = SweepConfig {
            runs: 2,
            base_seed: 10,
            threads: 2,
        };
        let seen = Mutex::new(std::collections::HashSet::new());
        sweep(&[0usize, 1, 2], cfg, |_x, seed| {
            seen.lock().unwrap().insert(seed);
            Some(0.0)
        });
        assert_eq!(seen.lock().unwrap().len(), 6);
    }

    #[test]
    fn infeasible_runs_excluded() {
        let cfg = SweepConfig {
            runs: 4,
            base_seed: 0,
            threads: 2,
        };
        let cells = sweep(&[0usize], cfg, |_x, seed| (seed % 2 == 0).then_some(10.0));
        assert_eq!(cells[0].feasible_runs, 2);
        assert_eq!(cells[0].mean, Some(10.0));
    }

    #[test]
    fn multi_metric_transpose() {
        let cfg = SweepConfig {
            runs: 2,
            base_seed: 0,
            threads: 1,
        };
        let series = sweep_multi(&[1.0f64, 2.0], 2, cfg, |x, _| vec![Some(x), Some(-x)]);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0][1].mean, Some(2.0));
        assert_eq!(series[1][0].mean, Some(-1.0));
    }

    #[test]
    fn timed_reports_duration() {
        let ((), secs) = timed(|| std::thread::sleep(std::time::Duration::from_millis(10)));
        assert!(secs >= 0.009);
    }

    #[test]
    fn zero_metrics_returns_empty() {
        let series = sweep_multi(&[1.0f64], 0, SweepConfig::default(), |_, _| vec![]);
        assert!(series.is_empty());
    }

    #[test]
    fn validated_rejects_degenerate_configs() {
        assert_eq!(SweepConfig::new(0, 1, 4), Err(SweepError::ZeroRuns));
        assert_eq!(SweepConfig::new(3, 1, 0), Err(SweepError::ZeroThreads));
        assert!(SweepConfig::new(3, 1, 4).is_ok());
        assert!(SweepConfig::default().validated().is_ok());
    }

    #[test]
    fn seed_stride_matches_legacy_below_1000_runs() {
        let cfg = SweepConfig {
            runs: 10,
            base_seed: 7,
            threads: 1,
        };
        assert_eq!(cfg.seed(3, 4), 7 + 3 * 1000 + 4);
    }

    #[test]
    fn seed_stride_widens_beyond_1000_runs() {
        let cfg = SweepConfig {
            runs: 2500,
            base_seed: 0,
            threads: 1,
        };
        // Last run of x=0 and first run of x=1 must not collide.
        assert!(cfg.seed(0, 2499) < cfg.seed(1, 0));
    }

    #[test]
    fn panicking_cell_is_isolated_and_counted() {
        let cfg = SweepConfig {
            runs: 4,
            base_seed: 0,
            threads: 2,
        };
        let cells = sweep(&[0usize, 1], cfg, |x, seed| {
            if x == 1 && seed % 2 == 0 {
                panic!("injected fault");
            }
            Some(1.0)
        });
        assert_eq!(cells[0].failed_runs, 0);
        assert_eq!(cells[0].feasible_runs, 4);
        assert_eq!(cells[1].failed_runs, 2);
        assert_eq!(cells[1].feasible_runs, 2);
        assert_eq!(cells[1].mean, Some(1.0));
    }

    #[test]
    fn wrong_arity_counts_as_failed_run() {
        let cfg = SweepConfig {
            runs: 2,
            base_seed: 0,
            threads: 1,
        };
        let series = sweep_multi(&[0usize], 2, cfg, |_, seed| {
            if seed % 2 == 0 {
                vec![Some(1.0)] // wrong arity
            } else {
                vec![Some(1.0), Some(2.0)]
            }
        });
        assert_eq!(series[0][0].failed_runs, 1);
        assert_eq!(series[0][0].feasible_runs, 1);
    }

    #[test]
    fn zero_runs_config_yields_empty_cells() {
        let cfg = SweepConfig {
            runs: 0,
            base_seed: 0,
            threads: 1,
        };
        let cells = sweep(&[0usize], cfg, |_, _| Some(1.0));
        assert_eq!(cells[0].total_runs, 0);
        assert_eq!(cells[0].mean, None);
    }
}
