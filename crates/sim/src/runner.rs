//! Parameter sweeps: every `(x, run)` cell evaluated in parallel across
//! seeds with `std::thread::scope` workers, aggregated into [`CellStats`].
//!
//! The paper averages 10 runs per plotted point; [`SweepConfig::runs`]
//! defaults to that. A run that returns `None` (infeasible — IAC/GAC do
//! this at tight SNR thresholds, Fig. 3(d)) is excluded from the mean and
//! surfaced in the cell's `feasible_runs`.

use std::sync::Mutex;

use crate::stats::CellStats;

/// Sweep parameters.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Runs (seeds) per x position; the paper uses 10.
    pub runs: usize,
    /// Base seed; run `r` at x-index `i` uses `base_seed + i·1000 + r`.
    pub base_seed: u64,
    /// Maximum worker threads.
    pub threads: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            runs: 10,
            base_seed: 1,
            threads: 8,
        }
    }
}

impl SweepConfig {
    /// A reduced configuration for quick smoke runs and benches.
    pub fn fast() -> Self {
        SweepConfig {
            runs: 3,
            ..Default::default()
        }
    }

    /// The seed for x-index `i`, run `r`.
    pub fn seed(&self, i: usize, r: usize) -> u64 {
        self.base_seed + (i as u64) * 1000 + r as u64
    }
}

/// Runs `eval(x, seed)` for every x and seed, producing `n_metrics`
/// series of aggregated cells.
///
/// `eval` returns one `Option<f64>` per metric (all-or-nothing
/// feasibility is *not* assumed: a metric can be `None` while another is
/// measured, which Fig. 3 uses when only one solver fails).
///
/// # Panics
/// Panics if `eval` returns a vector of the wrong length, or
/// `n_metrics == 0`, or the config has zero runs.
pub fn sweep_multi<X, F>(
    xs: &[X],
    n_metrics: usize,
    config: SweepConfig,
    eval: F,
) -> Vec<Vec<CellStats>>
where
    X: Copy + Sync,
    F: Fn(X, u64) -> Vec<Option<f64>> + Sync,
{
    assert!(n_metrics > 0, "need at least one metric");
    assert!(config.runs > 0, "need at least one run");
    assert!(
        config.runs < 1000,
        "seeds pack the run index into a stride of 1000; ≥ 1000 runs would reuse scenarios across x positions"
    );
    // outcomes[i][m][r]
    let outcomes: Vec<Vec<Mutex<Vec<Option<f64>>>>> = xs
        .iter()
        .map(|_| {
            (0..n_metrics)
                .map(|_| Mutex::new(vec![None; config.runs]))
                .collect()
        })
        .collect();

    // Work queue of (x-index, run).
    let jobs: Vec<(usize, usize)> = (0..xs.len())
        .flat_map(|i| (0..config.runs).map(move |r| (i, r)))
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..config.threads.max(1).min(jobs.len().max(1)) {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if k >= jobs.len() {
                    break;
                }
                let (i, r) = jobs[k];
                let vals = eval(xs[i], config.seed(i, r));
                assert_eq!(vals.len(), n_metrics, "eval returned wrong metric count");
                for (m, v) in vals.into_iter().enumerate() {
                    outcomes[i][m].lock().expect("no worker poisons a cell")[r] = v;
                }
            });
        }
    });

    // Transpose to per-metric series.
    (0..n_metrics)
        .map(|m| {
            xs.iter()
                .enumerate()
                .map(|(i, _)| {
                    CellStats::from_runs(&outcomes[i][m].lock().expect("workers joined cleanly"))
                })
                .collect()
        })
        .collect()
}

/// Convenience wrapper for single-metric sweeps.
pub fn sweep<X, F>(xs: &[X], config: SweepConfig, eval: F) -> Vec<CellStats>
where
    X: Copy + Sync,
    F: Fn(X, u64) -> Option<f64> + Sync,
{
    sweep_multi(xs, 1, config, |x, seed| vec![eval(x, seed)])
        .pop()
        .expect("one metric requested")
}

/// Wall-clock seconds of a closure (used for the running-time figures).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_aggregates_all_cells() {
        let cfg = SweepConfig {
            runs: 4,
            base_seed: 0,
            threads: 3,
        };
        let cells = sweep(&[1.0f64, 2.0, 3.0], cfg, |x, _seed| Some(x * 2.0));
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[1].mean, Some(4.0));
        assert_eq!(cells[1].feasible_runs, 4);
    }

    #[test]
    fn seeds_are_distinct_per_cell() {
        let cfg = SweepConfig {
            runs: 2,
            base_seed: 10,
            threads: 2,
        };
        let seen = Mutex::new(std::collections::HashSet::new());
        sweep(&[0usize, 1, 2], cfg, |_x, seed| {
            seen.lock().unwrap().insert(seed);
            Some(0.0)
        });
        assert_eq!(seen.lock().unwrap().len(), 6);
    }

    #[test]
    fn infeasible_runs_excluded() {
        let cfg = SweepConfig {
            runs: 4,
            base_seed: 0,
            threads: 2,
        };
        let cells = sweep(&[0usize], cfg, |_x, seed| (seed % 2 == 0).then_some(10.0));
        assert_eq!(cells[0].feasible_runs, 2);
        assert_eq!(cells[0].mean, Some(10.0));
    }

    #[test]
    fn multi_metric_transpose() {
        let cfg = SweepConfig {
            runs: 2,
            base_seed: 0,
            threads: 1,
        };
        let series = sweep_multi(&[1.0f64, 2.0], 2, cfg, |x, _| vec![Some(x), Some(-x)]);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0][1].mean, Some(2.0));
        assert_eq!(series[1][0].mean, Some(-1.0));
    }

    #[test]
    fn timed_reports_duration() {
        let ((), secs) = timed(|| std::thread::sleep(std::time::Duration::from_millis(10)));
        assert!(secs >= 0.009);
    }

    #[test]
    #[should_panic]
    fn zero_metrics_panics() {
        sweep_multi(&[1.0f64], 0, SweepConfig::default(), |_, _| vec![]);
    }
}
