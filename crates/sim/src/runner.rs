//! Parameter sweeps: every `(x, run)` cell evaluated in parallel across
//! seeds with `std::thread::scope` workers, aggregated into [`CellStats`].
//!
//! The paper averages 10 runs per plotted point; [`SweepConfig::runs`]
//! defaults to that. A run that returns `None` (infeasible — IAC/GAC do
//! this at tight SNR thresholds, Fig. 3(d)) is excluded from the mean and
//! surfaced in the cell's `feasible_runs`. A run that *panics* is
//! isolated with `catch_unwind` and surfaced in `failed_runs` — one
//! poisoned scenario never takes down a whole sweep.

use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use crate::stats::CellStats;

/// Rejected sweep parameters (see [`SweepConfig::validated`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// `runs == 0`: every cell would be empty.
    ZeroRuns,
    /// `threads == 0`: no worker could make progress.
    ZeroThreads,
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::ZeroRuns => write!(f, "sweep config needs at least one run"),
            SweepError::ZeroThreads => write!(f, "sweep config needs at least one thread"),
        }
    }
}

impl Error for SweepError {}

/// Sweep parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepConfig {
    /// Runs (seeds) per x position; the paper uses 10.
    pub runs: usize,
    /// Base seed; run `r` at x-index `i` uses `base_seed + i·stride + r`
    /// with `stride = max(runs, 1000)` (see [`SweepConfig::seed`]).
    pub base_seed: u64,
    /// Maximum worker threads.
    pub threads: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            runs: 10,
            base_seed: 1,
            threads: 8,
        }
    }
}

impl SweepConfig {
    /// A reduced configuration for quick smoke runs and benches.
    pub fn fast() -> Self {
        SweepConfig {
            runs: 3,
            ..Default::default()
        }
    }

    /// Result-returning construction: the non-panicking way to build a
    /// config from untrusted values.
    ///
    /// # Errors
    /// [`SweepError::ZeroRuns`] / [`SweepError::ZeroThreads`].
    pub fn new(runs: usize, base_seed: u64, threads: usize) -> Result<Self, SweepError> {
        SweepConfig {
            runs,
            base_seed,
            threads,
        }
        .validated()
    }

    /// Checks an already-built config (struct literals bypass
    /// [`SweepConfig::new`]).
    ///
    /// # Errors
    /// See [`SweepConfig::new`].
    pub fn validated(self) -> Result<Self, SweepError> {
        if self.runs == 0 {
            return Err(SweepError::ZeroRuns);
        }
        if self.threads == 0 {
            return Err(SweepError::ZeroThreads);
        }
        Ok(self)
    }

    /// The seed for x-index `i`, run `r`.
    ///
    /// The stride between x positions is `max(runs, 1000)`: identical to
    /// the historical fixed 1000 for every config with ≤ 1000 runs (so
    /// seeded golden outputs are stable), while configs beyond 1000 runs
    /// widen the stride instead of silently reusing seeds across x
    /// positions.
    pub fn seed(&self, i: usize, r: usize) -> u64 {
        let stride = (self.runs as u64).max(1000);
        self.base_seed + (i as u64) * stride + r as u64
    }
}

/// Runs `eval(x, seed)` for every x and seed, producing `n_metrics`
/// series of aggregated cells.
///
/// `eval` returns one `Option<f64>` per metric (all-or-nothing
/// feasibility is *not* assumed: a metric can be `None` while another is
/// measured, which Fig. 3 uses when only one solver fails).
///
/// Robustness: `n_metrics == 0` returns an empty vector; a config with
/// zero runs yields all-empty cells; a run whose `eval` panics or
/// returns the wrong metric arity is recorded as a *failed* run (all
/// metrics `None`, counted in [`CellStats::failed_runs`]) instead of
/// aborting the sweep.
pub fn sweep_multi<X, F>(
    xs: &[X],
    n_metrics: usize,
    config: SweepConfig,
    eval: F,
) -> Vec<Vec<CellStats>>
where
    X: Copy + Sync,
    F: Fn(X, u64) -> Vec<Option<f64>> + Sync,
{
    if n_metrics == 0 {
        return Vec::new();
    }
    // outcomes[i][m][r]; failed[i][r] marks crashed runs.
    let outcomes: Vec<Vec<Mutex<Vec<Option<f64>>>>> = xs
        .iter()
        .map(|_| {
            (0..n_metrics)
                .map(|_| Mutex::new(vec![None; config.runs]))
                .collect()
        })
        .collect();
    let failed: Vec<Mutex<Vec<bool>>> = xs
        .iter()
        .map(|_| Mutex::new(vec![false; config.runs]))
        .collect();

    // Work queue of (x-index, run).
    let jobs: Vec<(usize, usize)> = (0..xs.len())
        .flat_map(|i| (0..config.runs).map(move |r| (i, r)))
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..config.threads.max(1).min(jobs.len().max(1)) {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if k >= jobs.len() {
                    break;
                }
                let (i, r) = jobs[k];
                // Isolate per-cell panics: a poisoned scenario must not
                // take down the other (x, run) cells. `eval` is only
                // observed through its return value, so unwind safety
                // is not a correctness concern here.
                let vals = catch_unwind(AssertUnwindSafe(|| eval(xs[i], config.seed(i, r))))
                    .ok()
                    .filter(|v| v.len() == n_metrics);
                match vals {
                    Some(vals) => {
                        for (m, v) in vals.into_iter().enumerate() {
                            outcomes[i][m].lock().expect("no worker poisons a cell")[r] = v;
                        }
                    }
                    None => {
                        failed[i].lock().expect("no worker poisons a cell")[r] = true;
                    }
                }
            });
        }
    });

    // Transpose to per-metric series.
    (0..n_metrics)
        .map(|m| {
            xs.iter()
                .enumerate()
                .map(|(i, _)| {
                    let n_failed = failed[i]
                        .lock()
                        .expect("workers joined cleanly")
                        .iter()
                        .filter(|&&f| f)
                        .count();
                    CellStats::from_runs_with_failures(
                        &outcomes[i][m].lock().expect("workers joined cleanly"),
                        n_failed,
                    )
                })
                .collect()
        })
        .collect()
}

/// Convenience wrapper for single-metric sweeps.
pub fn sweep<X, F>(xs: &[X], config: SweepConfig, eval: F) -> Vec<CellStats>
where
    X: Copy + Sync,
    F: Fn(X, u64) -> Option<f64> + Sync,
{
    sweep_multi(xs, 1, config, |x, seed| vec![eval(x, seed)])
        .pop()
        .expect("one metric requested")
}

/// Wall-clock seconds of a closure (used for the running-time figures).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Runs `f` with a process-wide [`sag_obs::Collector`] installed and
/// returns its result together with the aggregated per-stage
/// time/work summary. The collector is global, so pipeline stages
/// executed on [`sweep_multi`] worker threads are captured too; the
/// recorder is uninstalled before returning.
pub fn collect_stage_metrics<T>(f: impl FnOnce() -> T) -> (T, sag_obs::StageMetrics) {
    let collector = std::sync::Arc::new(sag_obs::Collector::default());
    let guard = sag_obs::install(collector.clone());
    let out = f();
    drop(guard);
    (out, collector.summary())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_aggregates_all_cells() {
        let cfg = SweepConfig {
            runs: 4,
            base_seed: 0,
            threads: 3,
        };
        let cells = sweep(&[1.0f64, 2.0, 3.0], cfg, |x, _seed| Some(x * 2.0));
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[1].mean, Some(4.0));
        assert_eq!(cells[1].feasible_runs, 4);
    }

    #[test]
    fn seeds_are_distinct_per_cell() {
        let cfg = SweepConfig {
            runs: 2,
            base_seed: 10,
            threads: 2,
        };
        let seen = Mutex::new(std::collections::HashSet::new());
        sweep(&[0usize, 1, 2], cfg, |_x, seed| {
            seen.lock().unwrap().insert(seed);
            Some(0.0)
        });
        assert_eq!(seen.lock().unwrap().len(), 6);
    }

    #[test]
    fn infeasible_runs_excluded() {
        let cfg = SweepConfig {
            runs: 4,
            base_seed: 0,
            threads: 2,
        };
        let cells = sweep(&[0usize], cfg, |_x, seed| (seed % 2 == 0).then_some(10.0));
        assert_eq!(cells[0].feasible_runs, 2);
        assert_eq!(cells[0].mean, Some(10.0));
    }

    #[test]
    fn multi_metric_transpose() {
        let cfg = SweepConfig {
            runs: 2,
            base_seed: 0,
            threads: 1,
        };
        let series = sweep_multi(&[1.0f64, 2.0], 2, cfg, |x, _| vec![Some(x), Some(-x)]);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0][1].mean, Some(2.0));
        assert_eq!(series[1][0].mean, Some(-1.0));
    }

    #[test]
    fn timed_reports_duration() {
        let ((), secs) = timed(|| std::thread::sleep(std::time::Duration::from_millis(10)));
        assert!(secs >= 0.009);
    }

    #[test]
    fn zero_metrics_returns_empty() {
        let series = sweep_multi(&[1.0f64], 0, SweepConfig::default(), |_, _| vec![]);
        assert!(series.is_empty());
    }

    #[test]
    fn validated_rejects_degenerate_configs() {
        assert_eq!(SweepConfig::new(0, 1, 4), Err(SweepError::ZeroRuns));
        assert_eq!(SweepConfig::new(3, 1, 0), Err(SweepError::ZeroThreads));
        assert!(SweepConfig::new(3, 1, 4).is_ok());
        assert!(SweepConfig::default().validated().is_ok());
    }

    #[test]
    fn seed_stride_matches_legacy_below_1000_runs() {
        let cfg = SweepConfig {
            runs: 10,
            base_seed: 7,
            threads: 1,
        };
        assert_eq!(cfg.seed(3, 4), 7 + 3 * 1000 + 4);
    }

    #[test]
    fn seed_stride_widens_beyond_1000_runs() {
        let cfg = SweepConfig {
            runs: 2500,
            base_seed: 0,
            threads: 1,
        };
        // Last run of x=0 and first run of x=1 must not collide.
        assert!(cfg.seed(0, 2499) < cfg.seed(1, 0));
    }

    #[test]
    fn panicking_cell_is_isolated_and_counted() {
        let cfg = SweepConfig {
            runs: 4,
            base_seed: 0,
            threads: 2,
        };
        let cells = sweep(&[0usize, 1], cfg, |x, seed| {
            if x == 1 && seed % 2 == 0 {
                panic!("injected fault");
            }
            Some(1.0)
        });
        assert_eq!(cells[0].failed_runs, 0);
        assert_eq!(cells[0].feasible_runs, 4);
        assert_eq!(cells[1].failed_runs, 2);
        assert_eq!(cells[1].feasible_runs, 2);
        assert_eq!(cells[1].mean, Some(1.0));
    }

    #[test]
    fn wrong_arity_counts_as_failed_run() {
        let cfg = SweepConfig {
            runs: 2,
            base_seed: 0,
            threads: 1,
        };
        let series = sweep_multi(&[0usize], 2, cfg, |_, seed| {
            if seed % 2 == 0 {
                vec![Some(1.0)] // wrong arity
            } else {
                vec![Some(1.0), Some(2.0)]
            }
        });
        assert_eq!(series[0][0].failed_runs, 1);
        assert_eq!(series[0][0].feasible_runs, 1);
    }

    #[test]
    fn zero_runs_config_yields_empty_cells() {
        let cfg = SweepConfig {
            runs: 0,
            base_seed: 0,
            threads: 1,
        };
        let cells = sweep(&[0usize], cfg, |_, _| Some(1.0));
        assert_eq!(cells[0].total_runs, 0);
        assert_eq!(cells[0].mean, None);
    }
}
