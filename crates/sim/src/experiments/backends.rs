//! Extension experiment (not in the paper): the pluggable coverage
//! solver backends, head to head.
//!
//! Runs the full SAG pipeline over seeded multi-zone scenarios with
//! the lower tier pinned to each [`sag_core::SolverBackend`] in turn,
//! plus the adaptive per-zone selector and the exact+LP-round
//! portfolio. Every arm is scored against the exact arm on the same
//! scenario: relay-count ratio (solution quality), lower-tier solve
//! time in microseconds (cost), and the fraction of zones whose answer
//! was certified optimal.

use sag_core::sag::{run_sag_with, LowerSolver, SagPipelineConfig, SagReport};
use sag_core::{SolverBackend, SolverBuilder};

use crate::gen::{BsLayout, ScenarioSpec};
use crate::runner::{sweep_multi, SweepConfig};
use crate::table::Table;

/// A named way of constructing the lower-tier solver for one arm.
type Arm = (&'static str, fn() -> SolverBuilder);

/// The arms, in x-axis order of the [`backends`] table.
const ARMS: [Arm; 6] = [
    ("exact", || SolverBuilder::fixed(SolverBackend::ExactIlp)),
    ("lp_round", || SolverBuilder::fixed(SolverBackend::LpRound)),
    ("local_search", || {
        SolverBuilder::fixed(SolverBackend::LocalSearch)
    }),
    ("greedy", || SolverBuilder::fixed(SolverBackend::Greedy)),
    ("adaptive", SolverBuilder::adaptive),
    ("portfolio", || {
        SolverBuilder::portfolio(SolverBackend::ExactIlp, SolverBackend::LpRound)
    }),
];

/// A clustered multi-zone scenario (the shape per-zone selection is
/// for): short subscriber reach against a large field with a high
/// noise ceiling, so Zone Partition fragments the subscribers.
fn arm_scenario(seed: u64) -> sag_core::model::Scenario {
    ScenarioSpec {
        field_size: 800.0,
        n_subscribers: 24,
        n_base_stations: 2,
        snr_db: -15.0,
        dist_range: (8.0, 14.0),
        nmax: 1e-3,
        bs_layout: BsLayout::Uniform,
        ..Default::default()
    }
    .build(seed)
}

fn solve(sc: &sag_core::model::Scenario, solver: SolverBuilder) -> Option<SagReport> {
    run_sag_with(
        sc,
        SagPipelineConfig {
            lower_solver: LowerSolver::IlpqcWithGreedyFallback,
            solver,
            ..Default::default()
        },
    )
    .ok()
}

/// One seeded arm run: `[relays_vs_exact, lower_us, optimal_frac]`, or
/// all-`None` when the scenario is infeasible for either arm.
fn backend_run(arm: usize, seed: u64) -> Vec<Option<f64>> {
    let sc = arm_scenario(seed);
    let (Some(exact), Some(report)) = (
        solve(&sc, SolverBuilder::fixed(SolverBackend::ExactIlp)),
        solve(&sc, ARMS[arm].1()),
    ) else {
        return vec![None; 3];
    };
    let ratio = report.n_coverage_relays() as f64 / exact.n_coverage_relays().max(1) as f64;
    let lower_us = report.budget_spent.elapsed.as_nanos() as f64 / 1e3;
    let zones = report.zone_solvers.len().max(1) as f64;
    let optimal = report.zone_solvers.iter().filter(|z| z.optimal).count() as f64;
    vec![Some(ratio), Some(lower_us), Some(optimal / zones)]
}

/// Backend sweep; `relays_vs_exact` must stay bounded in every cell
/// (the heuristics trade optimality for speed, never feasibility).
pub fn backends(config: SweepConfig) -> Table {
    let arms: Vec<f64> = (0..ARMS.len()).map(|i| i as f64).collect();
    let series = sweep_multi(&arms, 3, config, |arm, seed| {
        backend_run(arm as usize, seed)
    });
    let mut t = Table::new(
        "Extension: coverage solver backends \
         (0=exact 1=lp_round 2=local_search 3=greedy 4=adaptive 5=portfolio)",
        "arm",
        arms,
    );
    let mut it = series.into_iter();
    t.push_series("relays_vs_exact", it.next().expect("3 series"));
    t.push_series("lower_us", it.next().expect("3 series"));
    t.push_series("optimal_frac", it.next().expect("3 series"));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_arm_answers_within_bounds() {
        for (arm, (name, _)) in ARMS.iter().enumerate() {
            let out = backend_run(arm, 7);
            let ratio = out[0].unwrap_or_else(|| panic!("arm {name} infeasible"));
            assert!(
                (1.0..=3.0).contains(&ratio),
                "arm {name} drifted from the exact optimum: {ratio}"
            );
        }
    }

    #[test]
    fn exact_arm_is_fully_optimal() {
        let out = backend_run(0, 7);
        assert_eq!(out[2], Some(1.0), "exact arm must certify every zone");
    }

    #[test]
    fn sweep_produces_all_series() {
        let t = backends(SweepConfig {
            runs: 1,
            base_seed: 2,
            threads: 2,
        });
        assert_eq!(t.series.len(), 3);
        assert_eq!(t.series[0].cells.len(), ARMS.len());
    }
}
