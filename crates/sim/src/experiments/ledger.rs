//! Extension experiment (not in the paper): old-vs-new SNR engines.
//!
//! PR 3 moved every SNR consumer from scratch recomputation onto the
//! incremental [`sag_radio::InterferenceLedger`]. This sweep measures
//! both engines on the same workload — a relay-move probe loop, the
//! access pattern of SAMC's sliding stage — across subscriber counts,
//! and reports wall-clock per sweep plus the resulting speedup. The
//! brute column scales as `O(probes · S · R)`, the ledger column as
//! `O(probes · S)`, so the ratio widens with relay density.

use std::time::Instant;

use sag_core::coverage::{interference_ledger, snr_violations_brute, snr_violations_ledger};
use sag_core::model::Scenario;
use sag_geom::Point;

use crate::gen::ScenarioSpec;
use crate::runner::{sweep_multi, SweepConfig};
use crate::table::Table;

const PROBES: usize = 16;

/// Relay layout + nearest assignment + deterministic move probes for a
/// scenario (mirrors `bench_snr`, scaled down for the sweep).
struct ProbeWorkload {
    relays: Vec<Point>,
    assignment: Vec<usize>,
    /// `(relay, dx, dy)` displacement probes, applied then undone.
    probes: Vec<(usize, f64, f64)>,
}

fn probe_workload(sc: &Scenario) -> ProbeWorkload {
    let relays: Vec<Point> = sc
        .subscribers
        .iter()
        .step_by(2)
        .map(|s| Point::new(s.position.x + 6.0, s.position.y + 4.5))
        .collect();
    let assignment: Vec<usize> = sc
        .subscribers
        .iter()
        .map(|s| {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (r, p) in relays.iter().enumerate() {
                let d = s.position.distance(*p);
                if d < best_d {
                    best_d = d;
                    best = r;
                }
            }
            best
        })
        .collect();
    let probes: Vec<(usize, f64, f64)> = (0..PROBES)
        .map(|k| {
            let r = (k * 7) % relays.len();
            let angle = k as f64 * 0.61;
            (r, 15.0 * angle.cos(), 15.0 * angle.sin())
        })
        .collect();
    ProbeWorkload {
        relays,
        assignment,
        probes,
    }
}

/// Milliseconds for one probe sweep via scratch recomputation.
fn brute_ms(
    sc: &Scenario,
    relays: &[Point],
    assignment: &[usize],
    probes: &[(usize, f64, f64)],
) -> f64 {
    let mut relays = relays.to_vec();
    let start = Instant::now();
    let mut total = 0usize;
    for &(r, dx, dy) in probes {
        let orig = relays[r];
        relays[r] = Point::new(orig.x + dx, orig.y + dy);
        total += snr_violations_brute(sc, &relays, assignment).len();
        relays[r] = orig;
    }
    std::hint::black_box(total);
    start.elapsed().as_secs_f64() * 1e3
}

/// Milliseconds for the same sweep as incremental ledger deltas.
fn ledger_ms(
    sc: &Scenario,
    relays: &[Point],
    assignment: &[usize],
    probes: &[(usize, f64, f64)],
) -> f64 {
    let mut ledger = interference_ledger(sc, relays);
    let start = Instant::now();
    let mut total = 0usize;
    for &(r, dx, dy) in probes {
        let orig = ledger.position(r);
        ledger.move_relay(r, Point::new(orig.x + dx, orig.y + dy));
        total += snr_violations_ledger(sc, &ledger, assignment).len();
        ledger.move_relay(r, orig);
    }
    std::hint::black_box(total);
    start.elapsed().as_secs_f64() * 1e3
}

/// Sweeps the probe workload over subscriber counts on the 800-field and
/// reports brute ms, ledger ms, and their ratio.
pub fn ledger(config: SweepConfig) -> Table {
    let sizes: Vec<f64> = vec![25.0, 50.0, 100.0];
    let series = sweep_multi(&sizes, 3, config, |size, seed| {
        let sc = ScenarioSpec {
            field_size: 800.0,
            n_subscribers: size as usize,
            snr_db: -15.0,
            ..Default::default()
        }
        .build(seed);
        let w = probe_workload(&sc);
        let b = brute_ms(&sc, &w.relays, &w.assignment, &w.probes);
        let l = ledger_ms(&sc, &w.relays, &w.assignment, &w.probes);
        vec![Some(b), Some(l), Some(b / l.max(1e-9))]
    });
    let mut t = Table::new(
        "Extension: SNR engine, brute vs incremental ledger — 800x800, move probes",
        "n_subscribers",
        sizes,
    );
    let mut it = series.into_iter();
    t.push_series("brute_ms", it.next().expect("3 series"));
    t.push_series("ledger_ms", it.next().expect("3 series"));
    t.push_series("speedup", it.next().expect("3 series"));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_and_ledger_is_not_slower_at_scale() {
        let cfg = SweepConfig {
            runs: 2,
            base_seed: 23,
            threads: 2,
        };
        let t = ledger(cfg);
        assert_eq!(t.series.len(), 3);
        // Every cell measured (no failed runs).
        for s in &t.series {
            for c in &s.cells {
                assert!(c.mean.is_some(), "{} has an empty cell", s.name);
            }
        }
        // At 100 subscribers the ledger must win clearly. Wall-clock
        // under test-mode contention is noisy, so the gate here is a
        // loose sanity floor — the release-mode CI gate (bench_snr)
        // enforces the real 5x bar.
        let last = t.xs.len() - 1;
        let speedup = t.series[2].cells[last].mean.expect("measured");
        assert!(speedup > 1.0, "ledger slower than brute: {speedup:.2}x");
    }

    #[test]
    fn both_engines_count_the_same_violations() {
        let sc = ScenarioSpec {
            field_size: 500.0,
            n_subscribers: 24,
            snr_db: -15.0,
            ..Default::default()
        }
        .build(9);
        let ProbeWorkload {
            mut relays,
            assignment,
            probes,
        } = probe_workload(&sc);
        let mut ledger = interference_ledger(&sc, &relays);
        for &(r, dx, dy) in &probes {
            let orig = relays[r];
            relays[r] = Point::new(orig.x + dx, orig.y + dy);
            ledger.move_relay(r, relays[r]);
            assert_eq!(
                snr_violations_brute(&sc, &relays, &assignment),
                snr_violations_ledger(&sc, &ledger, &assignment),
                "violation sets diverge at probe r={r}"
            );
            relays[r] = orig;
            ledger.move_relay(r, orig);
        }
    }
}
