//! Extension experiment: MBMC edge-weight ablation.
//!
//! Algorithm 7 weighs tree edges by the pessimistic hop count
//! `ceil(len/d_min) − 1`. Is that the right proxy for steiner-relay
//! count? This sweep compares the paper's rule against the plain
//! Euclidean MST and a per-node hop estimate, counting the connectivity
//! relays each actually places after steinerization.

use sag_core::mbmc::{mbmc_with_weights, WeightRule};

use crate::batch::sweep_multi_cached;
use crate::experiments::{build_cached, run_samc_cached};
use crate::gen::ScenarioSpec;
use crate::runner::SweepConfig;
use crate::table::Table;

/// Sweeps user counts on the 500-field, reporting connectivity relays
/// per weight rule.
pub fn mbmc_weights(config: SweepConfig) -> Table {
    let users: Vec<usize> = vec![10, 20, 30, 40, 50];
    let rules = [
        WeightRule::HopCountDmin,
        WeightRule::Euclidean,
        WeightRule::HopCountOwn,
    ];
    let series = sweep_multi_cached(&users, rules.len(), config, |ctx, n, seed| {
        let sp = ScenarioSpec {
            field_size: 500.0,
            n_subscribers: n,
            n_base_stations: 4,
            snr_db: -15.0,
            ..Default::default()
        };
        let sc = build_cached(ctx, &sp, seed);
        match run_samc_cached(ctx, &sp, seed).as_ref() {
            Some(sol) => rules
                .iter()
                .map(|&rule| {
                    mbmc_with_weights(&sc, sol, rule)
                        .ok()
                        .map(|p| p.n_relays() as f64)
                })
                .collect(),
            None => vec![None; rules.len()],
        }
    });
    let mut t = Table::new(
        "Extension: MBMC edge-weight ablation — connectivity RSs, 500x500, SNR=-15dB",
        "users",
        users.iter().map(|&u| u as f64).collect(),
    );
    let mut it = series.into_iter();
    t.push_series("hop-count dmin (paper)", it.next().expect("3 series"));
    t.push_series("euclidean", it.next().expect("3 series"));
    t.push_series("hop-count own", it.next().expect("3 series"));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_builds_and_rules_agree_roughly() {
        let cfg = SweepConfig {
            runs: 1,
            base_seed: 13,
            threads: 4,
        };
        let t = mbmc_weights(cfg);
        assert_eq!(t.series.len(), 3);
        for i in 0..t.xs.len() {
            let vals: Vec<f64> = t.series.iter().filter_map(|s| s.cells[i].mean).collect();
            if vals.len() == 3 {
                let max = vals.iter().cloned().fold(0.0f64, f64::max);
                let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
                assert!(
                    max <= min * 2.0 + 4.0,
                    "rules diverged at x={}: {vals:?}",
                    t.xs[i]
                );
            }
        }
    }
}
