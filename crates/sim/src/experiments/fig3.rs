//! Fig. 3(a–e): number of coverage relays for IAC vs GAC vs SAMC across
//! user counts, SNR thresholds and GAC grid sizes.

use crate::batch::sweep_multi_cached;
use crate::experiments::{
    gac_grid_for, relays_metric, run_gac_cached, run_iac_cached, run_samc_cached,
};
use crate::gen::ScenarioSpec;
use crate::runner::SweepConfig;
use crate::table::Table;

fn coverage_spec(field: f64, users: usize, snr_db: f64) -> ScenarioSpec {
    ScenarioSpec {
        field_size: field,
        n_subscribers: users,
        snr_db,
        ..Default::default()
    }
}

/// Shared engine for Fig. 3(a–c): sweep user counts on one field at one
/// threshold, counting coverage relays for the three solvers.
fn coverage_vs_users(
    title: &str,
    field: f64,
    snr_db: f64,
    users: &[usize],
    config: SweepConfig,
) -> Table {
    let grid = gac_grid_for(field);
    let series = sweep_multi_cached(users, 3, config, |ctx, n, seed| {
        let spec = coverage_spec(field, n, snr_db);
        vec![
            relays_metric(&run_iac_cached(ctx, &spec, seed)),
            relays_metric(&run_gac_cached(ctx, &spec, seed, grid)),
            relays_metric(&run_samc_cached(ctx, &spec, seed)),
        ]
    });
    let mut t = Table::new(title, "users", users.iter().map(|&u| u as f64).collect());
    let mut it = series.into_iter();
    t.push_series("IAC", it.next().expect("3 series"));
    t.push_series("GAC", it.next().expect("3 series"));
    t.push_series("SAMC", it.next().expect("3 series"));
    t
}

/// Fig. 3(a): 500×500, SNR −15 dB, 15–50 users.
pub fn fig3a(config: SweepConfig) -> Table {
    coverage_vs_users(
        "Fig 3(a) coverage RSs — 500x500, SNR=-15dB",
        500.0,
        -15.0,
        &[15, 20, 25, 30, 35, 40, 45, 50],
        config,
    )
}

/// Fig. 3(b): 800×800, SNR −15 dB, 20–70 users.
pub fn fig3b(config: SweepConfig) -> Table {
    coverage_vs_users(
        "Fig 3(b) coverage RSs — 800x800, SNR=-15dB",
        800.0,
        -15.0,
        &[20, 30, 40, 50, 60, 70],
        config,
    )
}

/// Fig. 3(c): 800×800, SNR −40 dB, 50–70 users (the regime where the
/// paper's IAC/GAC become feasible again).
pub fn fig3c(config: SweepConfig) -> Table {
    coverage_vs_users(
        "Fig 3(c) coverage RSs — 800x800, SNR=-40dB",
        800.0,
        -40.0,
        &[50, 55, 60, 65, 70],
        config,
    )
}

/// Fig. 3(d): 500×500, 30 users, SNR swept −14…−10 dB; IAC drops out
/// before GAC as the threshold tightens.
///
/// The *same* scenarios are used at every threshold (the seed ignores
/// the x position), so the series isolates the SNR effect exactly as the
/// paper's figure does.
pub fn fig3d(config: SweepConfig) -> Table {
    let snrs: Vec<f64> = vec![
        -14.0, -13.5, -13.0, -12.5, -12.0, -11.5, -11.0, -10.5, -10.0,
    ];
    let grid = gac_grid_for(500.0);
    let series = sweep_multi_cached(&snrs, 3, config, |ctx, snr, seed| {
        let spec = coverage_spec(500.0, 30, snr);
        let seed = seed % 1000;
        vec![
            relays_metric(&run_iac_cached(ctx, &spec, seed)),
            relays_metric(&run_gac_cached(ctx, &spec, seed, grid)),
            relays_metric(&run_samc_cached(ctx, &spec, seed)),
        ]
    });
    let mut t = Table::new(
        "Fig 3(d) coverage RSs vs SNR — 500x500, 30 users",
        "snr_db",
        snrs,
    );
    let mut it = series.into_iter();
    t.push_series("IAC", it.next().expect("3 series"));
    t.push_series("GAC", it.next().expect("3 series"));
    t.push_series("SAMC", it.next().expect("3 series"));
    t
}

/// Fig. 3(e): 500×500, 30 users, SNR −11.55 dB, GAC grid size swept
/// 13…20 (IAC and SAMC are grid-independent reference lines).
///
/// As in [`fig3d`], the scenarios are held fixed across the sweep so
/// only the grid size varies; the IAC and SAMC lines are then exactly
/// flat, as in the paper's plot.
pub fn fig3e(config: SweepConfig) -> Table {
    let grids: Vec<f64> = (13..=20).map(|g| g as f64).collect();
    let series = sweep_multi_cached(&grids, 3, config, |ctx, grid, seed| {
        let spec = coverage_spec(500.0, 30, -11.55);
        let seed = seed % 1000;
        vec![
            relays_metric(&run_iac_cached(ctx, &spec, seed)),
            relays_metric(&run_gac_cached(ctx, &spec, seed, grid)),
            relays_metric(&run_samc_cached(ctx, &spec, seed)),
        ]
    });
    let mut t = Table::new(
        "Fig 3(e) coverage RSs vs grid size — 500x500, 30 users, SNR=-11.55dB",
        "grid",
        grids,
    );
    let mut it = series.into_iter();
    t.push_series("IAC", it.next().expect("3 series"));
    t.push_series("GAC", it.next().expect("3 series"));
    t.push_series("SAMC", it.next().expect("3 series"));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SweepConfig {
        SweepConfig {
            runs: 1,
            base_seed: 42,
            threads: 4,
        }
    }

    #[test]
    fn fig3a_shape() {
        // Scale down (fewer users) to keep the test fast while exercising
        // the full pipeline.
        let t = coverage_vs_users("test", 300.0, -15.0, &[4, 8], tiny());
        assert_eq!(t.series.len(), 3);
        assert_eq!(t.xs, vec![4.0, 8.0]);
        // SAMC is always feasible on these mild instances.
        let samc = &t.series[2];
        assert!(samc.cells.iter().all(|c| c.mean.is_some()));
        // Relay counts grow (weakly) with user count.
        let a = samc.cells[0].mean.unwrap();
        let b = samc.cells[1].mean.unwrap();
        assert!(b + 1e-9 >= a);
    }

    #[test]
    fn fig3e_gac_monotone_in_grid() {
        // Coarser grids cannot decrease the GAC relay count on average —
        // checked loosely on one small instance.
        let grids = [10.0, 40.0];
        let series = sweep_multi_cached(&grids, 1, tiny(), |ctx, grid, seed| {
            let spec = coverage_spec(300.0, 6, -15.0);
            vec![relays_metric(&run_gac_cached(ctx, &spec, seed, grid))]
        });
        let fine = series[0][0].mean;
        let coarse = series[0][1].mean;
        if let (Some(f), Some(c)) = (fine, coarse) {
            assert!(c + 1e-9 >= f, "coarse grid {c} beat fine grid {f}");
        }
    }
}
