//! Extension experiment: sensitivity to the attenuation exponent α.
//!
//! The paper fixes the two-ray model but only bounds its exponent
//! ("α usually varies in a range of 2–4") without stating the simulated
//! value. Interference decays as `d^{-α}`, so α controls how hard the
//! SNR constraint bites: small α ⇒ far relays still interfere ⇒ the
//! paper's −10…−15 dB thresholds start to matter. This sweep quantifies
//! that: SAMC relay count, SAMC feasibility and the worst achieved
//! subscriber SNR margin across α ∈ [2, 4].

use sag_core::coverage::placement_snr;

use crate::experiments::run_samc;
use crate::gen::ScenarioSpec;
use crate::runner::{sweep_multi, SweepConfig};
use crate::table::Table;

/// Sweeps α at 30 users / 500×500 / β = −15 dB. Reports SAMC's relay
/// count, its feasibility fraction, and the minimum achieved SNR margin
/// `min_j SNR_j / β` (> 1 means headroom).
pub fn alpha_sweep(config: SweepConfig) -> Table {
    let alphas: Vec<f64> = vec![2.0, 2.25, 2.5, 2.75, 3.0, 3.25, 3.5, 3.75, 4.0];
    let series = sweep_multi(&alphas, 3, config, |alpha, seed| {
        let spec = ScenarioSpec {
            field_size: 500.0,
            n_subscribers: 30,
            snr_db: -15.0,
            ..Default::default()
        };
        let sc = spec.build(seed % 1000);
        // Re-parameterise the link with this α (same geometry).
        let link = sag_radio::LinkBudget::builder()
            .model(sag_radio::TwoRay::new(1.0, alpha))
            .max_power(spec.pmax)
            .snr_threshold(sag_radio::units::Db::new(spec.snr_db))
            .build();
        let sc = sag_core::model::Scenario {
            params: sag_core::model::NetworkParams::new(link, spec.nmax),
            ..sc
        };
        match run_samc(&sc) {
            Some(sol) => {
                let beta = sc.params.link.beta();
                let margin = (0..sc.n_subscribers())
                    .map(|j| placement_snr(&sc, &sol.relays, j, sol.assignment[j]) / beta)
                    .fold(f64::INFINITY, f64::min);
                vec![
                    Some(sol.n_relays() as f64),
                    Some(1.0),
                    Some(margin.min(1e6)),
                ]
            }
            None => vec![None, Some(0.0), None],
        }
    });
    let mut t = Table::new(
        "Extension: SAMC sensitivity to attenuation exponent α — 500x500, 30 users, SNR=-15dB",
        "alpha",
        alphas,
    );
    let mut it = series.into_iter();
    t.push_series("SAMC relays", it.next().expect("3 series"));
    t.push_series("feasible fraction", it.next().expect("3 series"));
    t.push_series("min SNR margin (x beta)", it.next().expect("3 series"));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn margin_shrinks_with_smaller_alpha() {
        let cfg = SweepConfig {
            runs: 2,
            base_seed: 23,
            threads: 4,
        };
        let t = alpha_sweep(cfg);
        let margins = &t.series[2];
        let first = margins.cells.first().and_then(|c| c.mean); // α = 2
        let last = margins.cells.last().and_then(|c| c.mean); // α = 4
        if let (Some(a2), Some(a4)) = (first, last) {
            assert!(
                a2 < a4,
                "interference must bite harder at α=2 (margin {a2}) than α=4 ({a4})"
            );
        }
        // Relay counts stay within the subscriber count whenever feasible.
        for c in &t.series[0].cells {
            if let Some(m) = c.mean {
                assert!((1.0..=30.0).contains(&m));
            }
        }
    }
}
