//! Table II: connectivity relay counts for MUST (pinned to BS1…BS4) vs
//! MBMC as the number of deployed base stations grows from 1 to 4
//! (500×500 field, 30 users, SNR −15 dB).

use sag_core::mbmc::{mbmc, must};

use crate::experiments::run_samc;
use crate::gen::ScenarioSpec;
use crate::runner::{sweep_multi, SweepConfig};
use crate::table::Table;

fn spec(n_bs: usize) -> ScenarioSpec {
    ScenarioSpec {
        field_size: 500.0,
        n_subscribers: 30,
        n_base_stations: n_bs,
        snr_db: -15.0,
        ..Default::default()
    }
}

/// Builds Table II. Cells where the pinned BS does not exist (e.g. MUST
/// BS3 with only two BSs deployed) report `N/A`, matching the paper.
pub fn table2(config: SweepConfig) -> Table {
    let bs_counts: Vec<usize> = vec![1, 2, 3, 4];
    let series = sweep_multi(&bs_counts, 5, config, |n_bs, seed| {
        let sc = spec(n_bs).build(seed);
        match run_samc(&sc) {
            Some(sol) => {
                let mut out: Vec<Option<f64>> = (0..4)
                    .map(|b| {
                        (b < n_bs)
                            .then(|| must(&sc, &sol, b).ok().map(|p| p.n_relays() as f64))
                            .flatten()
                    })
                    .collect();
                out.push(mbmc(&sc, &sol).ok().map(|p| p.n_relays() as f64));
                out
            }
            None => vec![None; 5],
        }
    });
    let mut t = Table::new(
        "Table II — MBMC vs MUST, 500x500, 30 users, SNR=-15dB",
        "n_bs",
        bs_counts.iter().map(|&b| b as f64).collect(),
    );
    let mut it = series.into_iter();
    for b in 1..=4 {
        t.push_series(format!("MUST BS{b}"), it.next().expect("5 series"));
    }
    t.push_series("MBMC", it.next().expect("5 series"));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_na_pattern() {
        // Scaled-down clone for speed: fewer users, fewer runs.
        let cfg = SweepConfig {
            runs: 1,
            base_seed: 3,
            threads: 4,
        };
        let bs_counts = [1usize, 2];
        let series = sweep_multi(&bs_counts, 5, cfg, |n_bs, seed| {
            let sc = ScenarioSpec {
                field_size: 300.0,
                n_subscribers: 5,
                n_base_stations: n_bs,
                ..Default::default()
            }
            .build(seed);
            match run_samc(&sc) {
                Some(sol) => {
                    let mut out: Vec<Option<f64>> = (0..4)
                        .map(|b| {
                            (b < n_bs)
                                .then(|| must(&sc, &sol, b).ok().map(|p| p.n_relays() as f64))
                                .flatten()
                        })
                        .collect();
                    out.push(mbmc(&sc, &sol).ok().map(|p| p.n_relays() as f64));
                    out
                }
                None => vec![None; 5],
            }
        });
        // With one BS, MUST BS2..BS4 are N/A and MBMC equals MUST BS1.
        assert!(series[1][0].mean.is_none());
        assert_eq!(series[0][0].mean, series[4][0].mean);
        // With two BSs, MBMC ≤ both MUSTs.
        let m = series[4][1].mean.unwrap();
        for s in series.iter().take(2) {
            if let Some(mu) = s[1].mean {
                assert!(m <= mu + 1e-9);
            }
        }
    }

    #[test]
    fn full_table_builds() {
        let cfg = SweepConfig {
            runs: 1,
            base_seed: 1,
            threads: 4,
        };
        // Use the real builder once with a tiny run count to cover it.
        let t = table2(cfg);
        assert_eq!(t.series.len(), 5);
        assert_eq!(t.xs, vec![1.0, 2.0, 3.0, 4.0]);
        // MUST BS2 must be N/A at n_bs = 1.
        assert!(t.series[1].cells[0].mean.is_none());
    }
}
