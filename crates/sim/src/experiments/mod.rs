//! One module per paper artefact (§IV): Fig. 3(a–e) lower-tier coverage,
//! Fig. 4/5(a–d) power & runtime & connectivity on the 500/800 fields,
//! Fig. 6 topology dumps, Fig. 7(a–c) total power, Table II MBMC vs MUST.
//!
//! Shared solver wrappers live here: each returns `None` on
//! infeasibility so sweeps can report the paper's "no feasible solution"
//! regimes instead of failing.

pub mod alpha_sweep;
pub mod backends;
pub mod channels;
pub mod churn;
pub mod fig3;
pub mod fig45;
pub mod fig6;
pub mod fig7;
pub mod ledger;
pub mod mbmc_weights;
pub mod scaling;
pub mod snr_stress;
pub mod table2;

use std::sync::Arc;

use sag_core::candidates::{gac_candidates, iac_candidates, prune_useless};
use sag_core::coverage::CoverageSolution;
use sag_core::ilpqc::{solve_ilpqc, IlpqcConfig};
use sag_core::model::Scenario;
use sag_core::samc::samc;

use crate::batch::BatchCtx;
use crate::fingerprint::FpHasher;
use crate::gen::ScenarioSpec;

/// Branch-and-bound budget for the ILPQC benchmark solvers; mirrors the
/// paper's practice of capping Gurobi on larger instances.
pub const ILPQC_NODE_LIMIT: usize = 20_000;

/// The GAC grid size used for a field: the paper sets it "as small as
/// possible" before the optimiser runs out of memory; `field/25` (20 on
/// the 500-field, 32 on the 800-field) keeps candidate counts near the
/// sizes the paper could still solve.
pub fn gac_grid_for(field_size: f64) -> f64 {
    (field_size / 25.0).max(10.0)
}

/// Lower-tier solve via SAMC; `None` on infeasibility.
pub fn run_samc(scenario: &Scenario) -> Option<CoverageSolution> {
    samc(scenario).ok()
}

/// Lower-tier solve via the ILPQC over IAC candidates.
pub fn run_iac(scenario: &Scenario) -> Option<CoverageSolution> {
    let cands = iac_candidates(scenario);
    solve_ilpqc(
        scenario,
        &cands,
        IlpqcConfig {
            node_limit: ILPQC_NODE_LIMIT,
            ..Default::default()
        },
    )
    .ok()
    .map(|o| o.solution)
}

/// Lower-tier solve via the ILPQC over GAC candidates with the given
/// grid size.
pub fn run_gac(scenario: &Scenario, grid_size: f64) -> Option<CoverageSolution> {
    let cands = prune_useless(scenario, gac_candidates(scenario, grid_size));
    if cands.is_empty() {
        return None;
    }
    solve_ilpqc(
        scenario,
        &cands,
        IlpqcConfig {
            node_limit: ILPQC_NODE_LIMIT,
            ..Default::default()
        },
    )
    .ok()
    .map(|o| o.solution)
}

// ---------------------------------------------------------------------
// Cached variants: the same solver wrappers, routed through the batched
// sweep engine's fingerprint-keyed invariant cache. Every key is the
// content hash of the *complete* pre-image of the cached computation
// (spec + seed, plus solver-specific knobs), so a cache hit returns
// exactly what a recompute would — sweeps that hold scenarios fixed
// while marching another knob (Fig. 3(d)/(e)) stop re-solving them per
// plotted point.

/// Cached [`ScenarioSpec::build`]: lanes in the same sweep that share
/// `(spec, seed)` share one built scenario.
pub fn build_cached(ctx: &BatchCtx<'_>, spec: &ScenarioSpec, seed: u64) -> Arc<Scenario> {
    ctx.cached(spec.fingerprint(seed), || spec.build(seed))
}

/// Cached [`run_samc`] keyed by `(spec, seed)`.
pub fn run_samc_cached(
    ctx: &BatchCtx<'_>,
    spec: &ScenarioSpec,
    seed: u64,
) -> Arc<Option<CoverageSolution>> {
    let mut h = FpHasher::new("solve/samc/v1");
    h.write_fingerprint(spec.fingerprint(seed));
    ctx.cached(h.finish(), || run_samc(&build_cached(ctx, spec, seed)))
}

/// Cached [`run_iac`] keyed by `(spec, seed)`.
pub fn run_iac_cached(
    ctx: &BatchCtx<'_>,
    spec: &ScenarioSpec,
    seed: u64,
) -> Arc<Option<CoverageSolution>> {
    let mut h = FpHasher::new("solve/iac/v1");
    h.write_fingerprint(spec.fingerprint(seed));
    ctx.cached(h.finish(), || run_iac(&build_cached(ctx, spec, seed)))
}

/// Cached [`run_gac`] keyed by `(spec, seed, grid_size)` — the grid is
/// part of the pre-image because it changes the candidate set.
pub fn run_gac_cached(
    ctx: &BatchCtx<'_>,
    spec: &ScenarioSpec,
    seed: u64,
    grid_size: f64,
) -> Arc<Option<CoverageSolution>> {
    let mut h = FpHasher::new("solve/gac/v1");
    h.write_fingerprint(spec.fingerprint(seed))
        .write_f64(grid_size);
    ctx.cached(h.finish(), || {
        run_gac(&build_cached(ctx, spec, seed), grid_size)
    })
}

/// The Fig. 3 metric: relay count of a (possibly cached) solve
/// outcome, `None` when the solver reported infeasibility.
pub fn relays_metric(sol: &Option<CoverageSolution>) -> Option<f64> {
    sol.as_ref().map(|s| s.n_relays() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_core::coverage::is_feasible;

    fn small_spec() -> ScenarioSpec {
        ScenarioSpec {
            n_subscribers: 6,
            field_size: 300.0,
            ..Default::default()
        }
    }

    #[test]
    fn all_three_solvers_feasible_on_easy_case() {
        let sc = small_spec().build(3);
        for (name, sol) in [
            ("samc", run_samc(&sc)),
            ("iac", run_iac(&sc)),
            ("gac", run_gac(&sc, gac_grid_for(300.0))),
        ] {
            let sol = sol.unwrap_or_else(|| panic!("{name} infeasible on easy case"));
            assert!(
                is_feasible(&sc, &sol),
                "{name} returned infeasible placement"
            );
        }
    }

    #[test]
    fn samc_no_worse_than_candidate_solvers() {
        // The paper's headline Fig. 3 shape: SAMC ≤ IAC ≤ GAC (continuous
        // sliding beats candidate-restricted optimisation). Check the
        // weaker invariant SAMC ≤ GAC on a handful of seeds.
        for seed in 0..3 {
            let sc = small_spec().build(seed);
            let samc_n = run_samc(&sc).map(|s| s.n_relays());
            let gac_n = run_gac(&sc, gac_grid_for(300.0)).map(|s| s.n_relays());
            if let (Some(s), Some(g)) = (samc_n, gac_n) {
                assert!(s <= g + 1, "seed {seed}: SAMC {s} ≫ GAC {g}");
            }
        }
    }

    #[test]
    fn grid_for_fields() {
        assert_eq!(gac_grid_for(500.0), 20.0);
        assert_eq!(gac_grid_for(800.0), 32.0);
        assert_eq!(gac_grid_for(100.0), 10.0);
    }
}
