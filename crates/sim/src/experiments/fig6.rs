//! Fig. 6(a–d): tree-topology dumps for IAC+MBMC, GAC+MBMC, SAMC+MBMC
//! and SAMC+MUST on one 600×600 scenario with four corner base stations.
//!
//! The paper shows scatter plots; this reproduction emits the same data
//! as structured dumps (and CSV) so any plotting tool can redraw them.

use sag_core::coverage::CoverageSolution;
use sag_core::mbmc::{mbmc, must, ConnectivityPlan};
use sag_core::model::Scenario;
use sag_geom::Point;

use crate::experiments::{gac_grid_for, run_gac, run_iac, run_samc};
use crate::gen::{BsLayout, ScenarioSpec};

/// A plotted topology: every station class plus the links.
#[derive(Debug, Clone)]
pub struct TopologyDump {
    /// Plot title (e.g. `"SAMC+MBMC"`).
    pub name: String,
    /// Subscriber positions.
    pub subscribers: Vec<Point>,
    /// Base-station positions.
    pub base_stations: Vec<Point>,
    /// Coverage relay positions.
    pub coverage_relays: Vec<Point>,
    /// Connectivity relay positions.
    pub connectivity_relays: Vec<Point>,
    /// Relay-link segments.
    pub links: Vec<(Point, Point)>,
}

impl TopologyDump {
    fn from_parts(
        name: &str,
        scenario: &Scenario,
        coverage: &CoverageSolution,
        plan: &ConnectivityPlan,
    ) -> Self {
        TopologyDump {
            name: name.to_string(),
            subscribers: scenario.subscriber_positions(),
            base_stations: scenario.base_station_positions(),
            coverage_relays: coverage.relays.clone(),
            connectivity_relays: plan.relays.clone(),
            links: plan.links(),
        }
    }

    /// Renders the dump as a point/segment listing (the textual analogue
    /// of the paper's scatter plot).
    pub fn to_text(&self) -> String {
        let mut out = format!("-- {} --\n", self.name);
        let section = |label: &str, pts: &[Point]| -> String {
            let mut s = format!("{label} ({}):\n", pts.len());
            for p in pts {
                s.push_str(&format!("  {p}\n"));
            }
            s
        };
        out.push_str(&section("SS", &self.subscribers));
        out.push_str(&section("BS", &self.base_stations));
        out.push_str(&section("RS(cover)", &self.coverage_relays));
        out.push_str(&section("RS(connect)", &self.connectivity_relays));
        out.push_str(&format!("links ({}):\n", self.links.len()));
        for (a, b) in &self.links {
            out.push_str(&format!("  {a} -> {b}\n"));
        }
        out
    }

    /// CSV with one row per entity: `kind,x,y,x2,y2` (`x2/y2` only for
    /// links).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,x,y,x2,y2\n");
        let mut push = |kind: &str, p: &Point| {
            out.push_str(&format!("{kind},{:.3},{:.3},,\n", p.x, p.y));
        };
        for p in &self.subscribers {
            push("ss", p);
        }
        for p in &self.base_stations {
            push("bs", p);
        }
        for p in &self.coverage_relays {
            push("rs_cover", p);
        }
        for p in &self.connectivity_relays {
            push("rs_connect", p);
        }
        for (a, b) in &self.links {
            out.push_str(&format!(
                "link,{:.3},{:.3},{:.3},{:.3}\n",
                a.x, a.y, b.x, b.y
            ));
        }
        out
    }
}

/// The Fig. 6 scenario: 600×600 view, 30 subscribers, four corner BSs.
pub fn fig6_scenario(seed: u64) -> Scenario {
    ScenarioSpec {
        field_size: 600.0,
        n_subscribers: 30,
        n_base_stations: 4,
        snr_db: -15.0,
        bs_layout: BsLayout::Corners,
        ..Default::default()
    }
    .build(seed)
}

/// Produces the four panels. Panels whose lower-tier solver is
/// infeasible on this seed are omitted (mirrors the paper's remark that
/// IAC/GAC fail on some instances).
pub fn fig6(seed: u64) -> Vec<TopologyDump> {
    let sc = fig6_scenario(seed);
    let mut dumps = Vec::new();
    let combos: Vec<(&str, Option<CoverageSolution>)> = vec![
        ("IAC+MBMC", run_iac(&sc)),
        ("GAC+MBMC", run_gac(&sc, gac_grid_for(600.0))),
        ("SAMC+MBMC", run_samc(&sc)),
    ];
    for (name, sol) in combos {
        if let Some(sol) = sol {
            if let Ok(plan) = mbmc(&sc, &sol) {
                dumps.push(TopologyDump::from_parts(name, &sc, &sol, &plan));
            }
        }
    }
    // Panel (d): SAMC lower tier, MUST pinned to the first corner BS.
    if let Some(sol) = run_samc(&sc) {
        if let Ok(plan) = must(&sc, &sol, 0) {
            dumps.push(TopologyDump::from_parts("SAMC+MUST", &sc, &sol, &plan));
        }
    }
    dumps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_produces_panels() {
        // Use a smaller clone of the fig6 scenario for test speed.
        let sc = ScenarioSpec {
            field_size: 300.0,
            n_subscribers: 6,
            n_base_stations: 4,
            bs_layout: BsLayout::Corners,
            ..Default::default()
        }
        .build(11);
        let sol = run_samc(&sc).expect("feasible");
        let plan = mbmc(&sc, &sol).expect("connectable");
        let dump = TopologyDump::from_parts("SAMC+MBMC", &sc, &sol, &plan);
        assert_eq!(dump.subscribers.len(), 6);
        assert_eq!(dump.base_stations.len(), 4);
        assert!(!dump.coverage_relays.is_empty());
        let text = dump.to_text();
        assert!(text.contains("RS(cover)"));
        let csv = dump.to_csv();
        assert!(csv.starts_with("kind,x,y"));
        assert!(csv.contains("rs_cover"));
    }

    #[test]
    fn must_panel_reaches_single_bs() {
        let sc = ScenarioSpec {
            field_size: 300.0,
            n_subscribers: 5,
            n_base_stations: 4,
            bs_layout: BsLayout::Corners,
            ..Default::default()
        }
        .build(3);
        let sol = run_samc(&sc).expect("feasible");
        let pinned = must(&sc, &sol, 0).expect("feasible");
        assert!(pinned.serving_bs.iter().all(|&b| b == 0));
        let free = mbmc(&sc, &sol).expect("feasible");
        assert!(free.n_relays() <= pinned.n_relays());
    }
}
