//! Extension experiment (not in the paper): the feasibility cliff.
//!
//! With Definition 2's interference-limited SNR under the two-ray model
//! at `α = 3`, uniformly scattered scenarios satisfy the paper's
//! −10…−25 dB thresholds with headroom, so the infeasibility crossover
//! the paper reports around −12 dB (Fig. 3(d)) appears here at stricter
//! thresholds. This sweep pushes β upward until every solver fails,
//! exposing the same qualitative transition: the candidate-restricted
//! solvers (IAC, then GAC) drop out before SAMC's continuous sliding.

use crate::experiments::{gac_grid_for, run_gac, run_iac, run_samc};
use crate::gen::ScenarioSpec;
use crate::runner::{sweep_multi, SweepConfig};
use crate::table::Table;

/// Sweeps β from −15 dB to +9 dB at 30 users on the 500-field and
/// reports the *feasible-run fraction* per solver (1.0 = always
/// solvable, 0.0 = never).
pub fn snr_stress(config: SweepConfig) -> Table {
    let snrs: Vec<f64> = vec![-15.0, -9.0, -3.0, 0.0, 3.0, 5.0, 7.0, 9.0];
    let grid = gac_grid_for(500.0);
    let series = sweep_multi(&snrs, 3, config, |snr, seed| {
        let sc = ScenarioSpec {
            field_size: 500.0,
            n_subscribers: 30,
            snr_db: snr,
            ..Default::default()
        }
        .build(seed);
        vec![
            Some(run_iac(&sc).is_some() as u8 as f64),
            Some(run_gac(&sc, grid).is_some() as u8 as f64),
            Some(run_samc(&sc).is_some() as u8 as f64),
        ]
    });
    let mut t = Table::new(
        "Extension: feasibility fraction vs SNR threshold — 500x500, 30 users",
        "snr_db",
        snrs,
    );
    let mut it = series.into_iter();
    t.push_series("IAC", it.next().expect("3 series"));
    t.push_series("GAC", it.next().expect("3 series"));
    t.push_series("SAMC", it.next().expect("3 series"));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cliff_exists_and_samc_survives_longest() {
        let cfg = SweepConfig {
            runs: 2,
            base_seed: 19,
            threads: 4,
        };
        let t = snr_stress(cfg);
        // At −15 dB everything solves.
        for s in &t.series {
            assert_eq!(s.cells[0].mean, Some(1.0), "{} failed at -15 dB", s.name);
        }
        // At +9 dB nothing should (co-channel relays cannot reach 8×).
        let last = t.xs.len() - 1;
        let samc_last = t.series[2].cells[last].mean.unwrap();
        assert!(samc_last <= 0.5, "even SAMC should mostly fail at +9 dB");
        // SAMC's feasibility mass is at least IAC's (continuous sliding
        // dominates the same intersection candidates; the paper's "IAC is
        // more sensitive to SNR" claim). GAC's grid explores positions
        // neither considers, so it is not comparable and not asserted.
        let mass = |idx: usize| -> f64 { t.series[idx].cells.iter().filter_map(|c| c.mean).sum() };
        assert!(
            mass(2) + 1e-9 >= mass(0) - 1.0,
            "SAMC {} vs IAC {}",
            mass(2),
            mass(0)
        );
    }
}
