//! Extension experiment: SAMC scalability and the value of Zone
//! Partition.
//!
//! The paper motivates Zone Partition (Algorithm 2) as the step that
//! keeps SAMC practical: zones are solved independently, so the
//! super-linear hitting-set and sliding stages run on small pieces. This
//! sweep measures SAMC wall-clock against subscriber count twice — with
//! the default `N_max` (one zone spanning the whole field) and with a
//! strict `N_max` that fragments the field — plus the zone counts, making
//! the speed-up attributable.

use sag_core::zone::zone_partition;

use crate::experiments::run_samc;
use crate::gen::ScenarioSpec;
use crate::runner::{sweep_multi, timed, SweepConfig};
use crate::table::Table;

/// `N_max` that keeps the whole 800-field in one interference zone.
const NMAX_GLOBAL: f64 = 1e-9;
/// Strict `N_max` (ignorable-noise distance ≈ 22) that fragments it.
const NMAX_STRICT: f64 = 1e-4;

/// Sweeps 25–150 users on the 800-field and reports SAMC runtime under
/// both `N_max` settings plus the strict setting's zone count.
pub fn scaling(config: SweepConfig) -> Table {
    let users: Vec<usize> = vec![25, 50, 75, 100, 125, 150];
    let series = sweep_multi(&users, 4, config, |n, seed| {
        let base = ScenarioSpec {
            field_size: 800.0,
            n_subscribers: n,
            snr_db: -15.0,
            ..Default::default()
        };
        let global = ScenarioSpec {
            nmax: NMAX_GLOBAL,
            ..base
        }
        .build(seed);
        let strict = ScenarioSpec {
            nmax: NMAX_STRICT,
            ..base
        }
        .build(seed);
        let (g_out, g_t) = timed(|| run_samc(&global));
        let (s_out, s_t) = timed(|| run_samc(&strict));
        let zones = zone_partition(&strict).len() as f64;
        vec![
            g_out.map(|_| g_t),
            s_out.as_ref().map(|_| s_t),
            Some(zones),
            s_out.map(|sol| sol.n_relays() as f64),
        ]
    });
    let mut t = Table::new(
        "Extension: SAMC scaling with and without zone fragmentation — 800x800, SNR=-15dB",
        "users",
        users.iter().map(|&u| u as f64).collect(),
    );
    let mut it = series.into_iter();
    t.push_series("t one-zone [s]", it.next().expect("4 series"));
    t.push_series("t zoned [s]", it.next().expect("4 series"));
    t.push_series("zones", it.next().expect("4 series"));
    t.push_series("relays (zoned)", it.next().expect("4 series"));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoned_runs_have_many_zones_and_finish() {
        let cfg = SweepConfig {
            runs: 1,
            base_seed: 31,
            threads: 2,
        };
        // Miniature version for test time: fewer users.
        let users = [20usize, 40];
        let series = sweep_multi(&users, 3, cfg, |n, seed| {
            let strict = ScenarioSpec {
                field_size: 800.0,
                n_subscribers: n,
                nmax: NMAX_STRICT,
                ..Default::default()
            }
            .build(seed);
            let (out, t) = timed(|| run_samc(&strict));
            let zones = zone_partition(&strict).len() as f64;
            vec![
                out.as_ref().map(|_| t),
                Some(zones),
                out.map(|s| s.n_relays() as f64),
            ]
        });
        for (zone_cell, relay_cell) in series[1].iter().zip(&series[2]) {
            let zones = zone_cell.mean.unwrap();
            assert!(zones > 1.0, "strict Nmax must fragment the field");
            if let Some(relays) = relay_cell.mean {
                // Each zone needs at least one relay.
                assert!(relays >= zones);
            }
        }
    }
}
