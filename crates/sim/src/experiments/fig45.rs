//! Fig. 4 (500×500) and Fig. 5 (800×800), panels (a)–(d): lower-tier
//! power (baseline / PRO / LPQC-optimal), running times (SAMC / IAC /
//! GAC), connectivity relay counts (MUST per BS vs MBMC), and upper-tier
//! power (baseline vs UCPO). Both figures share one engine parameterised
//! by field size.

use sag_core::mbmc::{mbmc, must};
use sag_core::pro::{baseline_power, optimal_power, pro};
use sag_core::ucpo::{baseline_upper_power, ucpo};

use crate::batch::sweep_multi_cached;
use crate::experiments::{build_cached, gac_grid_for, run_gac, run_iac, run_samc, run_samc_cached};
use crate::gen::ScenarioSpec;
use crate::runner::{sweep_multi, timed, SweepConfig};
use crate::table::Table;

/// User counts the paper sweeps on each field.
pub fn users_for_field(field: f64) -> Vec<usize> {
    if field <= 500.0 {
        vec![5, 10, 15, 20, 25, 30, 35, 40, 45, 50]
    } else {
        vec![20, 30, 40, 50, 60, 70]
    }
}

fn spec(field: f64, users: usize) -> ScenarioSpec {
    ScenarioSpec {
        field_size: field,
        n_subscribers: users,
        snr_db: -15.0,
        n_base_stations: 4,
        ..Default::default()
    }
}

/// Panel (a): lower-tier power — all-Pmax baseline vs PRO vs the LPQC
/// optimum, on the SAMC coverage topology.
pub fn power_pro(field: f64, config: SweepConfig) -> Table {
    let users = users_for_field(field);
    let series = sweep_multi_cached(&users, 3, config, |ctx, n, seed| {
        let sp = spec(field, n);
        let sc = build_cached(ctx, &sp, seed);
        match run_samc_cached(ctx, &sp, seed).as_ref() {
            Some(sol) => {
                let base = baseline_power(&sc, sol).total();
                let reduced = pro(&sc, sol).total();
                let optimal = optimal_power(&sc, sol).ok().map(|a| a.total());
                vec![Some(base), Some(reduced), optimal]
            }
            None => vec![None, None, None],
        }
    });
    let mut t = Table::new(
        format!(
            "Fig {} (a) lower-tier power — {field:.0}x{field:.0}, SNR=-15dB",
            fig_no(field)
        ),
        "users",
        users.iter().map(|&u| u as f64).collect(),
    );
    let mut it = series.into_iter();
    t.push_series("baseline", it.next().expect("3 series"));
    t.push_series("PRO", it.next().expect("3 series"));
    t.push_series("optimal", it.next().expect("3 series"));
    t
}

/// Panel (b): wall-clock running time (seconds) of SAMC vs IAC vs GAC.
///
/// Timings are taken inside the multi-threaded sweep, so absolute
/// seconds include CPU contention; only the *relative* ordering (the
/// paper's claim) should be read from this panel. Use `--threads 1` for
/// contention-free absolute numbers.
///
/// This panel deliberately stays on the *uncached* sweep path: it
/// measures solver wall-clock, and a cache hit would time the cache
/// instead of the solver.
pub fn running_times(field: f64, config: SweepConfig) -> Table {
    let users = users_for_field(field);
    let grid = gac_grid_for(field);
    let series = sweep_multi(&users, 3, config, |n, seed| {
        let sc = spec(field, n).build(seed);
        let (samc_out, samc_t) = timed(|| run_samc(&sc));
        let (iac_out, iac_t) = timed(|| run_iac(&sc));
        let (gac_out, gac_t) = timed(|| run_gac(&sc, grid));
        vec![
            samc_out.map(|_| samc_t),
            iac_out.map(|_| iac_t),
            gac_out.map(|_| gac_t),
        ]
    });
    let mut t = Table::new(
        format!(
            "Fig {} (b) running time [s] — {field:.0}x{field:.0}, SNR=-15dB",
            fig_no(field)
        ),
        "users",
        users.iter().map(|&u| u as f64).collect(),
    );
    let mut it = series.into_iter();
    t.push_series("SAMC", it.next().expect("3 series"));
    t.push_series("IAC", it.next().expect("3 series"));
    t.push_series("GAC", it.next().expect("3 series"));
    t
}

/// Panel (c): number of connectivity relays — MUST pinned to each of the
/// four BSs vs MBMC's nearest-BS trees.
pub fn connectivity(field: f64, config: SweepConfig) -> Table {
    let users = users_for_field(field);
    let series = sweep_multi_cached(&users, 5, config, |ctx, n, seed| {
        let sp = spec(field, n);
        let sc = build_cached(ctx, &sp, seed);
        match run_samc_cached(ctx, &sp, seed).as_ref() {
            Some(sol) => {
                let mut out: Vec<Option<f64>> = (0..4)
                    .map(|b| must(&sc, sol, b).ok().map(|p| p.n_relays() as f64))
                    .collect();
                out.push(mbmc(&sc, sol).ok().map(|p| p.n_relays() as f64));
                out
            }
            None => vec![None; 5],
        }
    });
    let mut t = Table::new(
        format!(
            "Fig {} (c) connectivity RSs — {field:.0}x{field:.0}, SNR=-15dB, 4 BSs",
            fig_no(field)
        ),
        "users",
        users.iter().map(|&u| u as f64).collect(),
    );
    let mut it = series.into_iter();
    for b in 1..=4 {
        t.push_series(format!("MUST BS{b}"), it.next().expect("5 series"));
    }
    t.push_series("MBMC", it.next().expect("5 series"));
    t
}

/// Panel (d): upper-tier power — all-Pmax baseline vs UCPO on the MBMC
/// topology.
pub fn power_ucpo(field: f64, config: SweepConfig) -> Table {
    let users = users_for_field(field);
    let series = sweep_multi_cached(&users, 2, config, |ctx, n, seed| {
        let sp = spec(field, n);
        let sc = build_cached(ctx, &sp, seed);
        match run_samc_cached(ctx, &sp, seed).as_ref() {
            Some(sol) => match mbmc(&sc, sol) {
                Ok(plan) => {
                    let base = baseline_upper_power(&sc, &plan).total();
                    let opt = ucpo(&sc, sol, &plan).total();
                    vec![Some(base), Some(opt)]
                }
                Err(_) => vec![None, None],
            },
            None => vec![None, None],
        }
    });
    let mut t = Table::new(
        format!(
            "Fig {} (d) upper-tier power — {field:.0}x{field:.0}, SNR=-15dB",
            fig_no(field)
        ),
        "users",
        users.iter().map(|&u| u as f64).collect(),
    );
    let mut it = series.into_iter();
    t.push_series("baseline", it.next().expect("2 series"));
    t.push_series("UCPO", it.next().expect("2 series"));
    t
}

fn fig_no(field: f64) -> u8 {
    if field <= 500.0 {
        4
    } else {
        5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SweepConfig {
        SweepConfig {
            runs: 1,
            base_seed: 7,
            threads: 4,
        }
    }

    #[test]
    fn pro_panel_ordering() {
        let t = power_pro(300.0, tiny()); // small custom field for speed
        for i in 0..t.xs.len() {
            let base = t.series[0].cells[i].mean;
            let pro = t.series[1].cells[i].mean;
            let opt = t.series[2].cells[i].mean;
            if let (Some(b), Some(p)) = (base, pro) {
                assert!(p <= b + 1e-9, "PRO must not exceed baseline");
            }
            if let (Some(p), Some(o)) = (pro, opt) {
                assert!(o <= p + 1e-6, "optimal must lower-bound PRO");
            }
        }
    }

    #[test]
    fn ucpo_panel_ordering() {
        let t = power_ucpo(300.0, tiny());
        for i in 0..t.xs.len() {
            if let (Some(b), Some(u)) = (t.series[0].cells[i].mean, t.series[1].cells[i].mean) {
                assert!(u <= b + 1e-9, "UCPO must not exceed baseline");
            }
        }
    }

    #[test]
    fn mbmc_beats_every_must() {
        let t = connectivity(300.0, tiny());
        let mbmc_series = &t.series[4];
        for i in 0..t.xs.len() {
            if let Some(m) = mbmc_series.cells[i].mean {
                for b in 0..4 {
                    if let Some(mu) = t.series[b].cells[i].mean {
                        assert!(
                            m <= mu + 1e-9,
                            "MBMC {m} worse than MUST BS{} {mu} at x={}",
                            b + 1,
                            t.xs[i]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn users_for_field_matches_paper() {
        assert_eq!(users_for_field(500.0).first(), Some(&5));
        assert_eq!(users_for_field(800.0), vec![20, 30, 40, 50, 60, 70]);
    }
}
