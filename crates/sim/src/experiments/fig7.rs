//! Fig. 7(a–c): total power of the full SAG pipeline vs the DARP
//! baseline combined with each lower-tier solver (SAMC / IAC / GAC), on
//! the 300, 500 and 800 fields.

use sag_core::darp::darp;
use sag_core::sag::run_sag;

use crate::batch::sweep_multi_cached;
use crate::experiments::{
    build_cached, gac_grid_for, run_gac_cached, run_iac_cached, run_samc_cached,
};
use crate::gen::ScenarioSpec;
use crate::runner::SweepConfig;
use crate::table::Table;

/// User counts per field, as plotted in the paper.
pub fn users_for_field(field: f64) -> Vec<usize> {
    if field <= 300.0 {
        vec![5, 10, 15, 20, 25, 30, 35, 40]
    } else if field <= 500.0 {
        vec![5, 10, 15, 20, 25, 30, 35, 40, 45, 50]
    } else {
        vec![20, 30, 40, 50, 60, 70]
    }
}

fn spec(field: f64, users: usize) -> ScenarioSpec {
    ScenarioSpec {
        field_size: field,
        n_subscribers: users,
        snr_db: -15.0,
        n_base_stations: 4,
        ..Default::default()
    }
}

/// One Fig. 7 panel for a field size.
pub fn fig7(field: f64, config: SweepConfig) -> Table {
    let users = users_for_field(field);
    let grid = gac_grid_for(field);
    let series = sweep_multi_cached(&users, 4, config, |ctx, n, seed| {
        let sp = spec(field, n);
        let sc = build_cached(ctx, &sp, seed);
        let sag_total = run_sag(&sc).ok().map(|r| r.power_summary().total);
        let darp_of = |sol: &Option<sag_core::CoverageSolution>| {
            sol.as_ref()
                .and_then(|s| darp(&sc, s, 0).ok())
                .map(|d| d.total_power())
        };
        vec![
            sag_total,
            darp_of(&run_samc_cached(ctx, &sp, seed)),
            darp_of(&run_iac_cached(ctx, &sp, seed)),
            darp_of(&run_gac_cached(ctx, &sp, seed, grid)),
        ]
    });
    let panel = if field <= 300.0 {
        "(a)"
    } else if field <= 500.0 {
        "(b)"
    } else {
        "(c)"
    };
    let mut t = Table::new(
        format!("Fig 7{panel} total power — {field:.0}x{field:.0}, SNR=-15dB"),
        "users",
        users.iter().map(|&u| u as f64).collect(),
    );
    let mut it = series.into_iter();
    t.push_series("SAG", it.next().expect("4 series"));
    t.push_series("SAMC+DARP", it.next().expect("4 series"));
    t.push_series("IAC+DARP", it.next().expect("4 series"));
    t.push_series("GAC+DARP", it.next().expect("4 series"));
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::run_samc;
    use crate::runner::sweep_multi;

    #[test]
    fn sag_beats_darp_baselines() {
        let cfg = SweepConfig {
            runs: 1,
            base_seed: 5,
            threads: 4,
        };
        // Small panel for test speed.
        let users = [5usize, 10];
        let series = sweep_multi(&users, 2, cfg, |n, seed| {
            let sc = spec(300.0, n).build(seed);
            let sag_total = run_sag(&sc).ok().map(|r| r.power_summary().total);
            let darp_total = run_samc(&sc)
                .and_then(|s| darp(&sc, &s, 0).ok())
                .map(|d| d.total_power());
            vec![sag_total, darp_total]
        });
        for (sag_cell, darp_cell) in series[0].iter().zip(&series[1]) {
            if let (Some(s), Some(d)) = (sag_cell.mean, darp_cell.mean) {
                assert!(s <= d + 1e-9, "SAG {s} must beat SAMC+DARP {d}");
            }
        }
    }

    #[test]
    fn user_grids_match_paper() {
        assert_eq!(users_for_field(300.0).last(), Some(&40));
        assert_eq!(users_for_field(500.0).last(), Some(&50));
        assert_eq!(users_for_field(800.0).last(), Some(&70));
    }
}
