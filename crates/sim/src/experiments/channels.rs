//! Extension experiment: orthogonal channels vs SNR threshold.
//!
//! Where sliding runs out of geometry (the `snr_stress` cliff), frequency
//! reuse keeps going: this sweep takes an SNR-*oblivious* distance-only
//! placement (k = 1 greedy multicover with nearest assignment) and asks
//! how many orthogonal channels `core::channels::assign_channels` needs
//! to make it SNR-feasible as β tightens from the paper's −15 dB up to
//! +12 dB.

use sag_core::channels::{assign_channels, plan_is_feasible};
use sag_core::kcover::{solve_k_coverage, KCoverStrategy};
use sag_core::CoverageSolution;

use crate::gen::ScenarioSpec;
use crate::runner::{sweep_multi, SweepConfig};
use crate::table::Table;

/// Sweeps β at 20 users / 500×500, reporting the channels needed and the
/// relay count of the underlying distance-only placement.
pub fn channels(config: SweepConfig) -> Table {
    let snrs: Vec<f64> = vec![-15.0, -9.0, -3.0, 0.0, 3.0, 6.0, 9.0, 12.0];
    let series = sweep_multi(&snrs, 2, config, |snr, seed| {
        let sc = ScenarioSpec {
            field_size: 500.0,
            n_subscribers: 20,
            snr_db: snr,
            ..Default::default()
        }
        .build(seed % 1000);
        let Ok(kc) = solve_k_coverage(&sc, 1, KCoverStrategy::Greedy) else {
            return vec![None, None];
        };
        let sol = CoverageSolution {
            relays: kc.relays.clone(),
            assignment: kc.primary_assignment(),
        };
        let plan = assign_channels(&sc, &sol);
        debug_assert!(plan_is_feasible(&sc, &sol, &plan));
        vec![Some(plan.n_channels as f64), Some(sol.n_relays() as f64)]
    });
    let mut t = Table::new(
        "Extension: orthogonal channels needed vs SNR threshold — 500x500, 20 users",
        "snr_db",
        snrs,
    );
    let mut it = series.into_iter();
    t.push_series("channels", it.next().expect("2 series"));
    t.push_series("relays", it.next().expect("2 series"));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channels_monotone_in_beta_and_bounded() {
        let cfg = SweepConfig {
            runs: 2,
            base_seed: 17,
            threads: 4,
        };
        let t = channels(cfg);
        let ch = &t.series[0];
        let relays = &t.series[1];
        // One channel suffices at the paper's threshold; more are needed
        // as β tightens; never more channels than relays.
        assert_eq!(ch.cells[0].mean, Some(1.0));
        let first = ch.cells[0].mean.unwrap();
        let last = ch.cells.last().unwrap().mean.unwrap();
        assert!(last >= first);
        for (c, r) in ch.cells.iter().zip(&relays.cells) {
            if let (Some(c), Some(r)) = (c.mean, r.mean) {
                assert!(c <= r + 1e-9);
            }
        }
    }
}
