//! Post-mortem trace analyzer over `sag-obs` JSONL streams.
//!
//! Backs the `repro trace` subcommand: reads a run's JSONL (written
//! via `SAG_OBS_JSON=path`), reconstructs the cross-thread span tree
//! from the `id`/`parent` links, and reports
//!
//! * tree health — roots, orphaned parents, unclosed spans, distinct
//!   threads, sink drops and flight-recorder overflow from `run_end`,
//! * the critical path (greedy longest-child walk from the root),
//! * per-zone time attribution over zone-tagged spans,
//! * per-span-name totals with self time (total minus child time),
//! * a windowed p50/p99 series over `churn.repair_ns` observations
//!   against the 500 µs repair SLO, with per-window burn flags,
//! * every `post_mortem` forensics frame in the stream.
//!
//! [`diff`] compares two runs stage by stage (span totals and
//! counters), for "what got slower between these two traces".
//!
//! The analyzer is deliberately forgiving: a truncated, interleaved
//! or byte-flipped line is counted as malformed and skipped, never
//! fatal — forensics input is by definition from a run that went
//! wrong.

use std::collections::{BTreeMap, HashMap};

use sag_obs::json;

/// Churn repair-latency SLO the windowed series is judged against
/// (matches the `bench_churn` p99 gate: 500 µs).
pub const CHURN_SLO_NS: u64 = 500_000;

/// One span assembled from its `span_enter`/`span_exit` lines.
#[derive(Debug, Clone)]
struct SpanRec {
    name: String,
    parent: Option<u64>,
    zone: Option<u64>,
    thread: u64,
    dur_ns: Option<u64>,
}

/// Aggregate over all spans sharing a name.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanAgg {
    /// Completed spans with this name.
    pub count: u64,
    /// Total wall time across them.
    pub total_ns: u64,
    /// Total minus time spent in child spans (attribution).
    pub self_ns: u64,
}

/// One forensics frame found in the stream.
#[derive(Debug, Clone)]
pub struct PostMortemRec {
    /// Failure class (`worker_panic`, `budget_exceeded`, ...).
    pub class: String,
    /// Stage the failure was attributed to, when recorded.
    pub stage: Option<String>,
    /// Zone index, when the failure was zone-local.
    pub zone: Option<u64>,
}

/// One window of the churn repair-latency SLO series.
#[derive(Debug, Clone, Copy)]
pub struct ChurnWindow {
    /// Window start (monotonic sink time).
    pub start_ns: u64,
    /// Window end (exclusive).
    pub end_ns: u64,
    /// Repairs observed in the window.
    pub count: usize,
    /// Median repair latency.
    pub p50_ns: u64,
    /// 99th-percentile repair latency.
    pub p99_ns: u64,
    /// `true` when the window's p99 burns the 500 µs SLO.
    pub burn: bool,
}

/// Everything [`analyze_str`] learned about one JSONL stream.
#[derive(Debug, Default)]
pub struct TraceReport {
    /// Non-empty lines seen.
    pub lines: usize,
    /// Lines that failed JSON validation or lacked a `kind` (counted,
    /// skipped, never fatal).
    pub malformed: usize,
    /// Run id from the `run_start` header.
    pub run: Option<String>,
    /// `dropped_events` from the `run_end` trailer.
    pub dropped_events: Option<u64>,
    /// `ring_overflow` from the `run_end` trailer.
    pub ring_overflow: Option<u64>,
    /// Distinct thread ordinals that emitted span lines.
    pub threads: usize,
    /// Spans with both enter and exit.
    pub completed: usize,
    /// Spans entered but never exited (crash or truncation).
    pub unclosed: usize,
    /// Span ids with no parent — a well-formed run has exactly one.
    pub roots: Vec<u64>,
    /// Span ids whose parent never appeared in the stream.
    pub orphans: Vec<u64>,
    /// Per-name span aggregates, name-ordered.
    pub span_totals: BTreeMap<String, SpanAgg>,
    /// Per-zone total span time, from zone-tagged spans.
    pub zone_totals: BTreeMap<u64, SpanAgg>,
    /// Counter sums by name.
    pub counters: BTreeMap<String, u64>,
    /// Forensics frames in stream order.
    pub post_mortems: Vec<PostMortemRec>,
    spans: HashMap<u64, SpanRec>,
    children: HashMap<u64, Vec<u64>>,
    churn_repairs: Vec<(u64, u64)>,
}

/// Parses one JSONL stream into a [`TraceReport`].
pub fn analyze_str(input: &str) -> TraceReport {
    let mut r = TraceReport::default();
    for raw in input.lines() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        r.lines += 1;
        if json::validate(line).is_err() {
            r.malformed += 1;
            continue;
        }
        let Some(kind) = json::field_str(line, "kind") else {
            r.malformed += 1;
            continue;
        };
        match kind {
            "run_start" => r.run = json::field_str(line, "run").map(str::to_owned),
            "run_end" => {
                r.dropped_events = json::field_u64(line, "dropped_events");
                r.ring_overflow = json::field_u64(line, "ring_overflow");
            }
            "span_enter" | "span_exit" => r.span_line(kind, line),
            "counter" => {
                if let (Some(name), Some(v)) = (
                    json::field_str(line, "name"),
                    json::field_u64(line, "value"),
                ) {
                    *r.counters.entry(name.to_owned()).or_insert(0) += v;
                }
            }
            "observe" if json::field_str(line, "name") == Some("churn.repair_ns") => {
                if let (Some(t), Some(v)) = (
                    json::field_u64(line, "t_ns"),
                    json::field_u64(line, "value"),
                ) {
                    r.churn_repairs.push((t, v));
                }
            }
            "post_mortem" => {
                if let Some(class) = json::field_str(line, "class") {
                    r.post_mortems.push(PostMortemRec {
                        class: class.to_owned(),
                        stage: json::field_str(line, "stage").map(str::to_owned),
                        zone: json::field_u64(line, "zone"),
                    });
                }
            }
            // `gauge` and any future kinds are tolerated, not errors.
            _ => {}
        }
    }
    r.finish();
    r
}

/// Reads and analyzes a JSONL file.
///
/// # Errors
/// Propagates the underlying read error.
pub fn analyze_file(path: &str) -> std::io::Result<TraceReport> {
    Ok(analyze_str(&std::fs::read_to_string(path)?))
}

impl TraceReport {
    fn span_line(&mut self, kind: &str, line: &str) {
        let (Some(name), Some(id)) = (json::field_str(line, "name"), json::field_u64(line, "id"))
        else {
            self.malformed += 1;
            return;
        };
        let parent = json::field_u64(line, "parent");
        let zone = json::field_u64(line, "zone");
        let thread = json::field_u64(line, "thread").unwrap_or(0);
        let rec = self.spans.entry(id).or_insert_with(|| SpanRec {
            name: name.to_owned(),
            parent,
            zone,
            thread,
            dur_ns: None,
        });
        // A truncated stream may lose the enter line; links present on
        // either line count.
        rec.parent = rec.parent.or(parent);
        rec.zone = rec.zone.or(zone);
        if kind == "span_exit" {
            rec.dur_ns = Some(json::field_u64(line, "dur_ns").unwrap_or(0));
        }
    }

    /// Second pass once every line is in: tree links, aggregates.
    fn finish(&mut self) {
        let mut threads: Vec<u64> = Vec::new();
        let mut ids: Vec<u64> = self.spans.keys().copied().collect();
        ids.sort_unstable();
        for &id in &ids {
            let rec = &self.spans[&id];
            if !threads.contains(&rec.thread) {
                threads.push(rec.thread);
            }
            match rec.parent {
                None => self.roots.push(id),
                Some(p) if self.spans.contains_key(&p) => {
                    self.children.entry(p).or_default().push(id);
                }
                Some(_) => self.orphans.push(id),
            }
            if rec.dur_ns.is_some() {
                self.completed += 1;
            } else {
                self.unclosed += 1;
            }
        }
        self.threads = threads.len();
        for &id in &ids {
            let rec = &self.spans[&id];
            let Some(dur) = rec.dur_ns else { continue };
            let child_ns: u64 = self
                .children
                .get(&id)
                .map(|kids| {
                    kids.iter()
                        .filter_map(|k| self.spans[k].dur_ns)
                        .sum::<u64>()
                })
                .unwrap_or(0);
            let self_ns = dur.saturating_sub(child_ns);
            let agg = self.span_totals.entry(rec.name.clone()).or_default();
            agg.count += 1;
            agg.total_ns += dur;
            agg.self_ns += self_ns;
            if let Some(zone) = rec.zone {
                let z = self.zone_totals.entry(zone).or_default();
                z.count += 1;
                z.total_ns += dur;
                z.self_ns += self_ns;
            }
        }
    }

    /// The greedy critical path: from the heaviest root, repeatedly
    /// descend into the longest completed child. Returns
    /// `(name, dur_ns)` pairs root-first; empty when no completed
    /// root exists.
    pub fn critical_path(&self) -> Vec<(String, u64)> {
        let mut path = Vec::new();
        let mut cur = self
            .roots
            .iter()
            .filter_map(|&id| self.spans[&id].dur_ns.map(|d| (id, d)))
            .max_by_key(|&(_, d)| d)
            .map(|(id, _)| id);
        while let Some(id) = cur {
            let rec = &self.spans[&id];
            path.push((rec.name.clone(), rec.dur_ns.unwrap_or(0)));
            cur = self
                .children
                .get(&id)
                .into_iter()
                .flatten()
                .filter_map(|&k| self.spans[&k].dur_ns.map(|d| (k, d)))
                .max_by_key(|&(_, d)| d)
                .map(|(k, _)| k);
        }
        path
    }

    /// Splits the `churn.repair_ns` observations into `n` equal time
    /// windows and reports p50/p99 per window against
    /// [`CHURN_SLO_NS`]. Empty when the stream had no repairs.
    pub fn churn_windows(&self, n: usize) -> Vec<ChurnWindow> {
        if self.churn_repairs.is_empty() || n == 0 {
            return Vec::new();
        }
        let lo = self
            .churn_repairs
            .iter()
            .map(|&(t, _)| t)
            .min()
            .unwrap_or(0);
        let hi = self
            .churn_repairs
            .iter()
            .map(|&(t, _)| t)
            .max()
            .unwrap_or(0);
        let width = ((hi - lo) / n as u64).max(1);
        let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); n];
        for &(t, v) in &self.churn_repairs {
            let idx = (((t - lo) / width) as usize).min(n - 1);
            buckets[idx].push(v);
        }
        buckets
            .into_iter()
            .enumerate()
            .filter(|(_, vals)| !vals.is_empty())
            .map(|(i, mut vals)| {
                vals.sort_unstable();
                let p50 = percentile(&vals, 50.0);
                let p99 = percentile(&vals, 99.0);
                ChurnWindow {
                    start_ns: lo + i as u64 * width,
                    end_ns: lo + (i as u64 + 1) * width,
                    count: vals.len(),
                    p50_ns: p50,
                    p99_ns: p99,
                    burn: p99 > CHURN_SLO_NS,
                }
            })
            .collect()
    }

    /// Renders the full human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let run = self.run.as_deref().unwrap_or("<no run_start>");
        out.push_str(&format!(
            "trace run {run}: {} lines ({} malformed), {} spans \
             ({} unclosed), {} thread(s)\n",
            self.lines,
            self.malformed,
            self.completed + self.unclosed,
            self.unclosed,
            self.threads,
        ));
        out.push_str(&format!(
            "tree: {} root(s), {} orphan(s)",
            self.roots.len(),
            self.orphans.len()
        ));
        match (self.dropped_events, self.ring_overflow) {
            (Some(d), Some(o)) => {
                out.push_str(&format!("; sink dropped {d}, ring overflowed {o}\n"));
            }
            _ => out.push_str("; no run_end trailer (truncated stream?)\n"),
        }

        let path = self.critical_path();
        if !path.is_empty() {
            out.push_str("\ncritical path:\n");
            for (depth, (name, dur)) in path.iter().enumerate() {
                out.push_str(&format!(
                    "  {}{name} {}\n",
                    "  ".repeat(depth),
                    fmt_ns(*dur)
                ));
            }
        }

        if !self.span_totals.is_empty() {
            out.push_str("\nper-stage time (name, count, total, self):\n");
            let mut rows: Vec<_> = self.span_totals.iter().collect();
            rows.sort_by_key(|(_, a)| std::cmp::Reverse(a.total_ns));
            for (name, a) in rows {
                out.push_str(&format!(
                    "  {name:<18} {:>6}  {:>10}  {:>10}\n",
                    a.count,
                    fmt_ns(a.total_ns),
                    fmt_ns(a.self_ns)
                ));
            }
        }

        if !self.zone_totals.is_empty() {
            out.push_str("\nper-zone time (zone, spans, total):\n");
            for (zone, a) in &self.zone_totals {
                out.push_str(&format!(
                    "  zone {zone:<4} {:>6}  {:>10}\n",
                    a.count,
                    fmt_ns(a.total_ns)
                ));
            }
        }

        let windows = self.churn_windows(8);
        if !windows.is_empty() {
            let burns = windows.iter().filter(|w| w.burn).count();
            out.push_str(&format!(
                "\nchurn repair SLO (p99 ≤ {}), burn rate {burns}/{}:\n",
                fmt_ns(CHURN_SLO_NS),
                windows.len()
            ));
            for w in &windows {
                out.push_str(&format!(
                    "  [{:>10}..{:>10}] n={:<6} p50={:>9} p99={:>9}{}\n",
                    fmt_ns(w.start_ns),
                    fmt_ns(w.end_ns),
                    w.count,
                    fmt_ns(w.p50_ns),
                    fmt_ns(w.p99_ns),
                    if w.burn { "  ** SLO BURN **" } else { "" }
                ));
            }
        }

        if self.post_mortems.is_empty() {
            out.push_str("\nno post-mortem frames (clean run)\n");
        } else {
            out.push_str(&format!(
                "\npost-mortem frames ({}):\n",
                self.post_mortems.len()
            ));
            for pm in &self.post_mortems {
                out.push_str(&format!("  class={}", pm.class));
                if let Some(stage) = &pm.stage {
                    out.push_str(&format!(" stage={stage}"));
                }
                if let Some(zone) = pm.zone {
                    out.push_str(&format!(" zone={zone}"));
                }
                out.push('\n');
            }
        }
        out
    }
}

/// Stage-by-stage comparison of two runs: span-time totals and
/// counter sums, largest absolute change first.
pub fn diff(old: &TraceReport, new: &TraceReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "trace diff: old={} new={}\n",
        old.run.as_deref().unwrap_or("?"),
        new.run.as_deref().unwrap_or("?")
    ));

    let mut names: Vec<&String> = old.span_totals.keys().collect();
    for k in new.span_totals.keys() {
        if !old.span_totals.contains_key(k) {
            names.push(k);
        }
    }
    let mut rows: Vec<(&str, u64, u64)> = names
        .into_iter()
        .map(|name| {
            let a = old.span_totals.get(name).map_or(0, |s| s.total_ns);
            let b = new.span_totals.get(name).map_or(0, |s| s.total_ns);
            (name.as_str(), a, b)
        })
        .collect();
    rows.sort_by_key(|&(_, a, b)| std::cmp::Reverse(a.abs_diff(b)));
    if !rows.is_empty() {
        out.push_str("\nstage time (name, old, new, delta):\n");
        for (name, a, b) in rows {
            out.push_str(&format!(
                "  {name:<18} {:>10}  {:>10}  {}\n",
                fmt_ns(a),
                fmt_ns(b),
                fmt_delta(a, b)
            ));
        }
    }

    let mut cnames: Vec<&String> = old.counters.keys().collect();
    for k in new.counters.keys() {
        if !old.counters.contains_key(k) {
            cnames.push(k);
        }
    }
    cnames.sort();
    let changed: Vec<_> = cnames
        .into_iter()
        .filter_map(|name| {
            let a = old.counters.get(name).copied().unwrap_or(0);
            let b = new.counters.get(name).copied().unwrap_or(0);
            (a != b).then_some((name, a, b))
        })
        .collect();
    if !changed.is_empty() {
        out.push_str("\ncounters (name, old, new):\n");
        for (name, a, b) in changed {
            out.push_str(&format!("  {name:<24} {a:>10}  {b:>10}\n"));
        }
    }

    let (pa, pb) = (old.post_mortems.len(), new.post_mortems.len());
    out.push_str(&format!("\npost-mortem frames: old {pa}, new {pb}\n"));
    out
}

/// Nearest-rank percentile over a sorted slice.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Human duration: ns below 1 µs, then µs, ms, s.
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

fn fmt_delta(old: u64, new: u64) -> String {
    let sign = if new >= old { "+" } else { "-" };
    let delta = new.abs_diff(old);
    if old == 0 {
        return format!("{sign}{}", fmt_ns(delta));
    }
    format!(
        "{sign}{} ({sign}{:.1}%)",
        fmt_ns(delta),
        100.0 * delta as f64 / old as f64
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_enter(t: u64, thread: u64, name: &str, id: u64, parent: Option<u64>) -> String {
        let p = parent
            .map(|p| format!(",\"parent\":{p}"))
            .unwrap_or_default();
        format!(
            "{{\"kind\":\"span_enter\",\"run\":\"r\",\"t_ns\":{t},\"thread\":{thread},\
             \"name\":\"{name}\",\"depth\":0,\"id\":{id}{p}}}"
        )
    }

    fn span_exit(
        t: u64,
        thread: u64,
        name: &str,
        id: u64,
        parent: Option<u64>,
        zone: Option<u64>,
        dur: u64,
    ) -> String {
        let p = parent
            .map(|p| format!(",\"parent\":{p}"))
            .unwrap_or_default();
        let z = zone.map(|z| format!(",\"zone\":{z}")).unwrap_or_default();
        format!(
            "{{\"kind\":\"span_exit\",\"run\":\"r\",\"t_ns\":{t},\"thread\":{thread},\
             \"name\":\"{name}\",\"depth\":0,\"id\":{id}{p}{z},\"dur_ns\":{dur}}}"
        )
    }

    fn sample_stream() -> String {
        let mut s = String::new();
        s.push_str("{\"kind\":\"run_start\",\"run\":\"r\",\"pid\":1,\"wall_unix_ns\":0}\n");
        s.push_str(&span_enter(0, 0, "run_sag", 1, None));
        s.push('\n');
        // Two zone solves on two worker threads, linked to the root.
        for (thread, id, zone, dur) in [(1u64, 2u64, 0u64, 4_000u64), (2, 3, 1, 9_000)] {
            s.push_str(&span_enter(10, thread, "zone_solve", id, Some(1)));
            s.push('\n');
            s.push_str(&span_exit(
                20,
                thread,
                "zone_solve",
                id,
                Some(1),
                Some(zone),
                dur,
            ));
            s.push('\n');
        }
        s.push_str(
            "{\"kind\":\"counter\",\"run\":\"r\",\"t_ns\":30,\"thread\":0,\
             \"name\":\"lp.solves\",\"value\":5}\n",
        );
        for (t, v) in [(100u64, 80_000u64), (200, 90_000), (10_000, 700_000)] {
            s.push_str(&format!(
                "{{\"kind\":\"observe\",\"run\":\"r\",\"t_ns\":{t},\"thread\":0,\
                 \"name\":\"churn.repair_ns\",\"stage\":\"churn\",\"value\":{v}}}\n"
            ));
        }
        s.push_str(
            "{\"kind\":\"post_mortem\",\"run\":\"r\",\"t_ns\":40,\"thread\":2,\
             \"class\":\"worker_panic\",\"detail\":\"boom\",\"stage\":\"samc\",\
             \"zone\":1,\"span_stack\":[],\"ring\":{\"overflow\":0,\"events\":[]}}\n",
        );
        s.push_str(&span_exit(50, 0, "run_sag", 1, None, None, 20_000));
        s.push('\n');
        s.push_str(
            "{\"kind\":\"run_end\",\"run\":\"r\",\"t_ns\":60,\"thread\":0,\
             \"dropped_events\":0,\"ring_overflow\":7}\n",
        );
        s
    }

    #[test]
    fn reconstructs_one_tree_across_threads() {
        let r = analyze_str(&sample_stream());
        assert_eq!(r.malformed, 0);
        assert_eq!(r.roots, vec![1]);
        assert!(r.orphans.is_empty());
        assert_eq!(r.completed, 3);
        assert_eq!(r.unclosed, 0);
        assert_eq!(r.threads, 3);
        assert_eq!(r.dropped_events, Some(0));
        assert_eq!(r.ring_overflow, Some(7));
        assert_eq!(r.counters["lp.solves"], 5);
        assert_eq!(r.post_mortems.len(), 1);
        assert_eq!(r.post_mortems[0].class, "worker_panic");
        assert_eq!(r.post_mortems[0].zone, Some(1));
    }

    #[test]
    fn critical_path_follows_the_longest_child() {
        let r = analyze_str(&sample_stream());
        let path = r.critical_path();
        assert_eq!(
            path,
            vec![
                ("run_sag".to_owned(), 20_000),
                ("zone_solve".to_owned(), 9_000)
            ]
        );
        // Self time: the root spent 20µs total, 13µs of it in zones.
        let root = &r.span_totals["run_sag"];
        assert_eq!(root.total_ns, 20_000);
        assert_eq!(root.self_ns, 7_000);
        assert_eq!(r.zone_totals[&1].total_ns, 9_000);
    }

    #[test]
    fn churn_windows_flag_slo_burn() {
        let r = analyze_str(&sample_stream());
        let windows = r.churn_windows(4);
        assert!(!windows.is_empty());
        // The early repairs are under the SLO; the late 700µs one burns.
        assert!(!windows[0].burn);
        let last = windows.last().expect("windows");
        assert_eq!(last.p99_ns, 700_000);
        assert!(last.burn);
        let rendered = r.render();
        assert!(rendered.contains("SLO BURN"));
        assert!(rendered.contains("critical path"));
        assert!(rendered.contains("worker_panic"));
    }

    #[test]
    fn malformed_and_truncated_lines_are_skipped_not_fatal() {
        let mut s = sample_stream();
        s.push_str(
            "{\"kind\":\"span_exit\",\"name\":\"x\",\"id\":99,\"parent\":42,\
                     \"dur_ns\":5}\n",
        );
        s.push_str("{\"kind\":\"counter\",\"name\":\"trunc\n");
        s.push_str("not json at all\n");
        let r = analyze_str(&s);
        assert_eq!(r.malformed, 2);
        assert_eq!(r.orphans, vec![99]);
        assert_eq!(r.roots, vec![1]);
        // Stream with no run_end still renders.
        let r2 = analyze_str(
            &sample_stream()
                .lines()
                .take(3)
                .collect::<Vec<_>>()
                .join("\n"),
        );
        assert!(r2.render().contains("truncated stream?"));
        assert_eq!(r2.unclosed, 2);
    }

    #[test]
    fn diff_reports_stage_and_counter_deltas() {
        let old = analyze_str(&sample_stream());
        let doubled = sample_stream()
            .replace("\"dur_ns\":20000", "\"dur_ns\":40000")
            .replace("\"value\":5", "\"value\":9");
        let new = analyze_str(&doubled);
        let d = diff(&old, &new);
        assert!(d.contains("run_sag"));
        assert!(d.contains("+100.0%"));
        assert!(d.contains("lp.solves"));
        assert!(d.contains("post-mortem frames: old 1, new 1"));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [10u64, 20, 30, 40];
        assert_eq!(percentile(&v, 50.0), 20);
        assert_eq!(percentile(&v, 99.0), 40);
        assert_eq!(percentile(&v, 1.0), 10);
        assert_eq!(percentile(&[], 50.0), 0);
    }
}
