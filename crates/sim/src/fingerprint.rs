//! Content fingerprints for the batched sweep engine's invariant cache.
//!
//! A [`Fingerprint`] is a 128-bit FNV-1a hash of the *inputs* to a
//! deterministic build function. Two sweep lanes that feed identical
//! bytes into a [`FpHasher`] get the same fingerprint, so the cache in
//! [`crate::batch`] can hand both the same artifact — and because every
//! cached build is a pure function of exactly the bytes that were
//! hashed, a cache hit returns the same value a recompute would,
//! keeping cached sweeps byte-identical to uncached ones.
//!
//! The hash is not cryptographic; it only needs to keep honest inputs
//! apart. At 128 bits, accidental collisions across the few thousand
//! distinct keys of even an enormous parameter study are out of reach,
//! and the cache additionally separates entries by Rust type (see
//! [`crate::batch::SweepCache`]), so a collision could at worst alias
//! two artifacts of the *same* type.

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// A 128-bit content hash identifying one cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Incremental FNV-1a-128 hasher with typed write helpers.
///
/// Writes are length-prefixed where ambiguity is possible (`str`,
/// byte slices), so `("ab", "c")` and `("a", "bc")` hash differently.
#[derive(Debug, Clone)]
pub struct FpHasher {
    state: u128,
}

impl Default for FpHasher {
    fn default() -> Self {
        FpHasher { state: FNV_OFFSET }
    }
}

impl FpHasher {
    /// A fresh hasher seeded with a domain-separation tag, so keys
    /// built for different artifact kinds can never collide even when
    /// their payload bytes agree.
    pub fn new(domain: &str) -> Self {
        let mut h = FpHasher::default();
        h.write_str(domain);
        h
    }

    /// Hashes raw bytes (length-prefixed).
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.write_u64(bytes.len() as u64);
        for &b in bytes {
            self.state = (self.state ^ u128::from(b)).wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Hashes a UTF-8 string (length-prefixed).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_bytes(s.as_bytes())
    }

    /// Hashes one `u64`, fixed width (no length prefix needed).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        for b in v.to_le_bytes() {
            self.state = (self.state ^ u128::from(b)).wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Hashes one `usize` (widened to `u64`).
    pub fn write_usize(&mut self, v: usize) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// Hashes another fingerprint (both 64-bit halves), so composite
    /// keys can be built from sub-keys without rehashing their inputs.
    pub fn write_fingerprint(&mut self, fp: Fingerprint) -> &mut Self {
        self.write_u64(fp.0 as u64).write_u64((fp.0 >> 64) as u64)
    }

    /// Hashes one `f64` by bit pattern: `-0.0` and `0.0` hash apart,
    /// every NaN payload hashes apart — which is exactly right for a
    /// cache key, where "same bits in, same bits out" is the contract.
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Finalises the key.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let mut a = FpHasher::new("test");
        a.write_u64(1).write_u64(2);
        let mut b = FpHasher::new("test");
        b.write_u64(1).write_u64(2);
        assert_eq!(a.finish(), b.finish());
        let mut c = FpHasher::new("test");
        c.write_u64(2).write_u64(1);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn domain_tags_separate_identical_payloads() {
        let mut a = FpHasher::new("iac");
        a.write_u64(7);
        let mut b = FpHasher::new("gac");
        b.write_u64(7);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn length_prefix_prevents_concatenation_aliasing() {
        let mut a = FpHasher::new("t");
        a.write_str("ab").write_str("c");
        let mut b = FpHasher::new("t");
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn float_bit_patterns_are_distinguished() {
        let mut a = FpHasher::new("t");
        a.write_f64(0.0);
        let mut b = FpHasher::new("t");
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn display_is_stable_hex() {
        let fp = FpHasher::new("t").finish();
        let s = fp.to_string();
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
