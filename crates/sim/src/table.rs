//! Text tables and CSV series — the harness's stand-in for the paper's
//! Matlab figures. Every experiment returns a [`Table`]; the `repro`
//! binary renders it and can emit CSV for external plotting.

use std::fmt;

use crate::stats::CellStats;

/// One named curve of a figure: `(x, cell)` pairs.
#[derive(Debug, Clone)]
pub struct Series {
    /// Curve label (e.g. `"SAMC"`).
    pub name: String,
    /// Aggregated value per x position.
    pub cells: Vec<CellStats>,
}

/// A rendered experiment: an x-axis plus one or more series.
#[derive(Debug, Clone)]
pub struct Table {
    /// Human-readable experiment title (e.g. `"Fig 3(a) …"`).
    pub title: String,
    /// X-axis label (e.g. `"users"`).
    pub x_label: String,
    /// X positions.
    pub xs: Vec<f64>,
    /// The curves.
    pub series: Vec<Series>,
}

impl Table {
    /// Creates an empty table with the given axes.
    pub fn new(title: impl Into<String>, x_label: impl Into<String>, xs: Vec<f64>) -> Self {
        Table {
            title: title.into(),
            x_label: x_label.into(),
            xs,
            series: Vec::new(),
        }
    }

    /// Appends a series.
    ///
    /// # Panics
    /// Panics if the series length does not match the x-axis.
    pub fn push_series(&mut self, name: impl Into<String>, cells: Vec<CellStats>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.xs.len(),
            "series length must match x-axis"
        );
        self.series.push(Series {
            name: name.into(),
            cells,
        });
        self
    }

    /// Renders as CSV: header `x,<name>…`, one row per x; `N/A` cells
    /// render as empty fields.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label);
        for s in &self.series {
            out.push(',');
            // Quote fields containing commas to stay RFC-4180 friendly.
            if s.name.contains(',') {
                out.push('"');
                out.push_str(&s.name.replace('"', "\"\""));
                out.push('"');
            } else {
                out.push_str(&s.name);
            }
        }
        out.push('\n');
        for (i, x) in self.xs.iter().enumerate() {
            out.push_str(&format!("{x}"));
            for s in &self.series {
                out.push(',');
                if let Some(m) = s.cells[i].mean {
                    out.push_str(&format!("{m:.6}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        // Column widths.
        let mut headers = vec![self.x_label.clone()];
        headers.extend(self.series.iter().map(|s| s.name.clone()));
        let mut rows: Vec<Vec<String>> = Vec::new();
        for (i, x) in self.xs.iter().enumerate() {
            let mut row = vec![format!("{x}")];
            row.extend(self.series.iter().map(|s| s.cells[i].display()));
            rows.push(row);
        }
        let widths: Vec<usize> = headers
            .iter()
            .enumerate()
            .map(|(c, h)| {
                rows.iter()
                    .map(|r| r[c].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .zip(&widths)
                .map(|(cell, w)| format!("{cell:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&headers))?;
        for row in &rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(v: f64) -> CellStats {
        CellStats::from_runs(&[Some(v)])
    }

    fn na() -> CellStats {
        CellStats::from_runs(&[None])
    }

    #[test]
    fn csv_rendering() {
        let mut t = Table::new("t", "users", vec![5.0, 10.0]);
        t.push_series("A", vec![cell(1.0), cell(2.0)]);
        t.push_series("B", vec![cell(3.0), na()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "users,A,B");
        assert_eq!(lines[1], "5,1.000000,3.000000");
        assert_eq!(lines[2], "10,2.000000,");
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new("t", "x", vec![1.0]);
        t.push_series("a,b", vec![cell(1.0)]);
        assert!(t.to_csv().starts_with("x,\"a,b\""));
    }

    #[test]
    fn display_contains_all() {
        let mut t = Table::new("My title", "x", vec![1.0]);
        t.push_series("curve", vec![na()]);
        let s = format!("{t}");
        assert!(s.contains("My title"));
        assert!(s.contains("curve"));
        assert!(s.contains("N/A"));
    }

    #[test]
    #[should_panic]
    fn mismatched_series_panics() {
        Table::new("t", "x", vec![1.0, 2.0]).push_series("a", vec![cell(1.0)]);
    }
}

impl Table {
    /// Renders as a GitHub-flavoured markdown table (`N/A` for empty
    /// cells), used by `repro --report`.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |", self.x_label));
        for s in &self.series {
            out.push_str(&format!(" {} |", s.name));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.series {
            out.push_str("---|");
        }
        out.push('\n');
        for (i, x) in self.xs.iter().enumerate() {
            out.push_str(&format!("| {x} |"));
            for s in &self.series {
                out.push_str(&format!(" {} |", s.cells[i].display()));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod markdown_tests {
    use super::*;
    use crate::stats::CellStats;

    #[test]
    fn markdown_structure() {
        let mut t = Table::new("My experiment", "users", vec![5.0, 10.0]);
        t.push_series(
            "A",
            vec![
                CellStats::from_runs(&[Some(1.0), Some(2.0)]),
                CellStats::from_runs(&[None, None]),
            ],
        );
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "### My experiment");
        assert_eq!(lines[2], "| users | A |");
        assert_eq!(lines[3], "|---|---|");
        assert!(lines[4].contains("1.50"));
        assert!(lines[5].contains("N/A"));
    }
}
