//! # sag-sim — simulation & experiment harness
//!
//! Reproduces every table and figure of the ICDCS 2013 SAG paper's
//! evaluation (§IV) on top of `sag-core`:
//!
//! * [`gen`] — seeded random scenario generation (uniform SS/BS
//!   placement, `d_i ∈ [30, 40]`, the paper's field sizes),
//! * [`stats`] — mean/std aggregation over the paper's 10-run averages,
//! * [`table`] — text tables and CSV series for figure data,
//! * [`runner`] — parameter sweeps parallelised across seeds
//!   (`std::thread::scope` workers),
//! * [`batch`] — the batched sweep engine: structure-of-arrays lane
//!   batches over the `(x, run)` grid, lock-free per-cell outcome
//!   slots, and the fingerprint-keyed invariant cache,
//! * [`fingerprint`] — 128-bit content hashes keying that cache,
//! * [`snapshot`] — compact binary scenario snapshots (`bytes`),
//! * [`experiments`] — one module per paper artefact: Fig. 3(a–e),
//!   Fig. 4/5(a–d), Fig. 6, Fig. 7(a–c), Table II,
//! * [`trace`] — the `repro trace` failure-forensics analyzer over
//!   `sag-obs` JSONL streams (span trees, critical path, churn SLO
//!   windows, run-to-run diffs),
//! * the `repro` binary — `cargo run -p sag-sim --bin repro -- <exp>`.
//!
//! # Example
//!
//! ```
//! use sag_sim::gen::{ScenarioSpec, BsLayout};
//!
//! let spec = ScenarioSpec {
//!     field_size: 500.0,
//!     n_subscribers: 10,
//!     n_base_stations: 4,
//!     snr_db: -15.0,
//!     bs_layout: BsLayout::Uniform,
//!     ..ScenarioSpec::default()
//! };
//! let scenario = spec.build(42);
//! assert_eq!(scenario.n_subscribers(), 10);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod experiments;
pub mod fingerprint;
pub mod gen;
pub mod heatmap;
pub mod plot;
pub mod runner;
pub mod snapshot;
pub mod stats;
pub mod table;
pub mod trace;

pub use gen::{BsLayout, ScenarioSpec};
pub use table::{Series, Table};
