//! Seeded random scenario generation matching the paper's §IV-A
//! settings: square fields of 300/500/800, subscribers and base stations
//! uniformly distributed, distance requirements uniform in `[30, 40]`,
//! SNR thresholds in `[-25, -10]` dB (down to `-40` dB in Fig. 3(c)).

use sag_testkit::rng::Rng;

use crate::fingerprint::{Fingerprint, FpHasher};
use sag_core::model::{BaseStation, NetworkParams, Scenario, Subscriber};
use sag_geom::{Point, Rect};
use sag_radio::{units::Db, LinkBudget};

/// Base-station placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BsLayout {
    /// Uniformly random in the field (the paper's default).
    #[default]
    Uniform,
    /// Pushed toward the four field corners (the Fig. 6 topology plots);
    /// more than four wrap around the corner list.
    Corners,
}

/// Declarative description of a random scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScenarioSpec {
    /// Side of the square playing field (300 / 500 / 800 in the paper).
    pub field_size: f64,
    /// Number of subscriber stations.
    pub n_subscribers: usize,
    /// Number of base stations.
    pub n_base_stations: usize,
    /// SNR threshold in dB.
    pub snr_db: f64,
    /// Distance-requirement range (the paper uses `[30, 40]`).
    pub dist_range: (f64, f64),
    /// Maximum relay transmit power.
    pub pmax: f64,
    /// Ignorable-noise level `N_max` for Zone Partition.
    pub nmax: f64,
    /// Base-station layout.
    pub bs_layout: BsLayout,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            field_size: 500.0,
            n_subscribers: 30,
            n_base_stations: 4,
            snr_db: -15.0,
            dist_range: (30.0, 40.0),
            pmax: 1.0,
            nmax: 1e-9,
            bs_layout: BsLayout::Uniform,
        }
    }
}

impl ScenarioSpec {
    /// Materialises the scenario with a deterministic seed.
    ///
    /// The same `(spec, seed)` pair always produces the identical
    /// scenario, which is what makes every experiment reproducible
    /// bit-for-bit.
    ///
    /// # Panics
    /// Panics if the spec is degenerate (no subscribers/base stations,
    /// empty distance range, non-positive field).
    pub fn build(&self, seed: u64) -> Scenario {
        assert!(self.n_subscribers > 0, "spec needs ≥ 1 subscriber");
        assert!(self.n_base_stations > 0, "spec needs ≥ 1 base station");
        assert!(
            self.dist_range.0 > 0.0 && self.dist_range.0 <= self.dist_range.1,
            "invalid distance range {:?}",
            self.dist_range
        );
        let field = Rect::centered_square(self.field_size);
        let mut rng = Rng::seed_from_u64(seed);
        let uniform_point = |rng: &mut Rng| {
            Point::new(
                rng.gen_range(field.min().x..=field.max().x),
                rng.gen_range(field.min().y..=field.max().y),
            )
        };
        let subscribers: Vec<Subscriber> = (0..self.n_subscribers)
            .map(|_| {
                let p = uniform_point(&mut rng);
                let d = rng.gen_range(self.dist_range.0..=self.dist_range.1);
                Subscriber::new(p, d)
            })
            .collect();
        let base_stations: Vec<BaseStation> = match self.bs_layout {
            BsLayout::Uniform => (0..self.n_base_stations)
                .map(|_| BaseStation::new(uniform_point(&mut rng)))
                .collect(),
            BsLayout::Corners => {
                let h = self.field_size / 2.0 * 0.9;
                let corners = [
                    Point::new(h, h),
                    Point::new(-h, h),
                    Point::new(-h, -h),
                    Point::new(h, -h),
                ];
                (0..self.n_base_stations)
                    .map(|i| BaseStation::new(corners[i % corners.len()]))
                    .collect()
            }
        };
        let link = LinkBudget::builder()
            .max_power(self.pmax)
            .snr_threshold(Db::new(self.snr_db))
            .build();
        Scenario::new(
            field,
            subscribers,
            base_stations,
            NetworkParams::new(link, self.nmax),
        )
        .expect("spec guarantees non-empty subscriber/BS lists")
    }

    /// Content fingerprint of the `(spec, seed)` pair — the complete
    /// pre-image of [`ScenarioSpec::build`], which is a pure function
    /// of exactly these values. Two lanes with equal fingerprints are
    /// therefore guaranteed the bit-identical scenario, which is what
    /// lets the batched sweep cache share built scenarios (and
    /// artifacts derived from them) across sweep cells.
    pub fn fingerprint(&self, seed: u64) -> Fingerprint {
        let mut h = FpHasher::new("scenario-spec/v1");
        h.write_f64(self.field_size)
            .write_usize(self.n_subscribers)
            .write_usize(self.n_base_stations)
            .write_f64(self.snr_db)
            .write_f64(self.dist_range.0)
            .write_f64(self.dist_range.1)
            .write_f64(self.pmax)
            .write_f64(self.nmax)
            .write_str(match self.bs_layout {
                BsLayout::Uniform => "uniform",
                BsLayout::Corners => "corners",
            })
            .write_u64(seed);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_tracks_every_build_input() {
        let spec = ScenarioSpec::default();
        assert_eq!(spec.fingerprint(7), spec.fingerprint(7));
        assert_ne!(spec.fingerprint(7), spec.fingerprint(8));
        let variants = [
            ScenarioSpec {
                field_size: 300.0,
                ..spec
            },
            ScenarioSpec {
                n_subscribers: 31,
                ..spec
            },
            ScenarioSpec {
                n_base_stations: 5,
                ..spec
            },
            ScenarioSpec {
                snr_db: -11.0,
                ..spec
            },
            ScenarioSpec {
                dist_range: (30.0, 41.0),
                ..spec
            },
            ScenarioSpec { pmax: 2.0, ..spec },
            ScenarioSpec { nmax: 1e-8, ..spec },
            ScenarioSpec {
                bs_layout: BsLayout::Corners,
                ..spec
            },
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(v.fingerprint(7), spec.fingerprint(7), "variant {i}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = ScenarioSpec::default();
        let a = spec.build(7);
        let b = spec.build(7);
        assert_eq!(a, b);
        let c = spec.build(8);
        assert_ne!(a, c);
    }

    #[test]
    fn everything_inside_field() {
        let spec = ScenarioSpec {
            field_size: 300.0,
            n_subscribers: 50,
            ..Default::default()
        };
        let sc = spec.build(1);
        for s in &sc.subscribers {
            assert!(sc.field.contains(s.position));
            assert!((30.0..=40.0).contains(&s.distance_req));
        }
        for b in &sc.base_stations {
            assert!(sc.field.contains(b.position));
        }
    }

    #[test]
    fn corner_layout() {
        let spec = ScenarioSpec {
            n_base_stations: 4,
            bs_layout: BsLayout::Corners,
            ..Default::default()
        };
        let sc = spec.build(0);
        // All four quadrants occupied.
        let quads: std::collections::HashSet<(bool, bool)> = sc
            .base_stations
            .iter()
            .map(|b| (b.position.x > 0.0, b.position.y > 0.0))
            .collect();
        assert_eq!(quads.len(), 4);
    }

    #[test]
    fn snr_threshold_applied() {
        let spec = ScenarioSpec {
            snr_db: -40.0,
            ..Default::default()
        };
        let sc = spec.build(3);
        assert!((sc.params.link.beta() - 1e-4).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_subscribers_panics() {
        ScenarioSpec {
            n_subscribers: 0,
            ..Default::default()
        }
        .build(0);
    }
}
