//! Batched sweep engine with a fingerprint-keyed invariant cache.
//!
//! The paper's figures are parameter studies: every plotted point
//! averages 10 seeded runs, and whole curves re-evaluate the *same*
//! scenarios while only one knob moves (Fig. 3(d) sweeps the SNR
//! threshold over fixed geometry; Fig. 3(e) sweeps the GAC grid over
//! entirely fixed scenarios). The per-cell runner re-built geometry,
//! candidate sets and solver answers from scratch for every `(x, run)`
//! cell; this engine instead
//!
//! * lays the job grid out **structure-of-arrays** (cell index / x
//!   index / seed in parallel arrays) and marches workers through
//!   contiguous *lane batches* of K cells per claim,
//! * shares everything invariant across sweep cells through a
//!   [`SweepCache`]: artifacts are keyed by a content
//!   [`Fingerprint`] of the inputs to their (pure, deterministic)
//!   build function, so lanes that differ only in the swept parameter
//!   or the run index hit instead of recomputing,
//! * writes each cell's outcome into a **lock-free slot** (a
//!   [`OnceLock`] sized up front, written exactly once by the one
//!   worker that claimed the cell), so aggregation never contends on a
//!   mutex grid,
//! * seeds each worker with the coordinator's [`sag_obs`] span context
//!   and live recorder stack, so a sweep capture reconstructs into a
//!   single span tree at any thread count (buffered recorders are fed
//!   per-cell and folded in cell-index order, the
//!   [`sag_core::engine`] idiom).
//!
//! # Determinism contract
//!
//! As long as `eval` is a pure function of `(x, seed)` and every
//! cached build is a pure function of its fingerprint pre-image, the
//! aggregated [`CellStats`] are byte-identical across thread counts,
//! job orders ([`JobOrder::Shuffled`] included), cache states (cold,
//! warm, disabled) and the per-cell reference path
//! ([`sweep_multi_reference`]). The cache can change only *when* an
//! artifact is built, never its value.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use crate::fingerprint::Fingerprint;
use crate::runner::SweepConfig;
use crate::stats::CellStats;

/// Hit/miss accounting of one [`SweepCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses answered from an already-built artifact.
    pub hits: u64,
    /// Accesses that had to run the build closure.
    pub misses: u64,
    /// Distinct keys currently stored.
    pub entries: usize,
}

/// Fingerprint-keyed store of sweep-invariant artifacts.
///
/// Entries are keyed by `(Fingerprint, TypeId)` — the type id keeps a
/// (vanishingly unlikely) fingerprint collision from ever aliasing two
/// artifacts of different types. Each key owns a private [`OnceLock`],
/// so a missed artifact is built exactly once even when several lanes
/// race for it; the map mutex is held only to fetch the key's cell,
/// never across a build.
pub struct SweepCache {
    enabled: bool,
    #[allow(clippy::type_complexity)]
    entries: Mutex<HashMap<(Fingerprint, TypeId), Arc<OnceLock<Arc<dyn Any + Send + Sync>>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SweepCache {
    /// An empty, enabled cache.
    pub fn new() -> Arc<Self> {
        Arc::new(SweepCache {
            enabled: true,
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// A cache that never stores: every access runs the build closure
    /// (and counts as a miss). This is what `SAG_SWEEP_CACHE=0`
    /// installs, and what the per-cell reference path uses.
    pub fn disabled() -> Arc<Self> {
        Arc::new(SweepCache {
            enabled: false,
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Whether this cache stores artifacts at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Returns the artifact for `fp`, building it with `build` on the
    /// first access.
    ///
    /// `build` must be a pure, deterministic function of the data
    /// hashed into `fp` — that is the whole byte-identical contract:
    /// whoever builds, everyone reads the same value a recompute would
    /// have produced.
    pub fn cached<T: Send + Sync + 'static>(
        &self,
        fp: Fingerprint,
        build: impl FnOnce() -> T,
    ) -> Arc<T> {
        if !self.enabled {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Arc::new(build());
        }
        let slot = {
            let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
            entries.entry((fp, TypeId::of::<T>())).or_default().clone()
        };
        let mut built = false;
        let any = slot
            .get_or_init(|| {
                built = true;
                Arc::new(build()) as Arc<dyn Any + Send + Sync>
            })
            .clone();
        if built {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        any.downcast::<T>()
            .expect("TypeId in the cache key guarantees the stored type")
    }

    /// Snapshot of the hit/miss accounting.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .entries
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len(),
        }
    }
}

/// Per-sweep handle handed to every `eval` invocation: the gateway to
/// the invariant cache.
pub struct BatchCtx<'a> {
    cache: &'a SweepCache,
}

impl BatchCtx<'_> {
    /// See [`SweepCache::cached`].
    pub fn cached<T: Send + Sync + 'static>(
        &self,
        fp: Fingerprint,
        build: impl FnOnce() -> T,
    ) -> Arc<T> {
        self.cache.cached(fp, build)
    }

    /// Whether artifacts are actually being stored (false under
    /// `SAG_SWEEP_CACHE=0` and on the reference path).
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_enabled()
    }
}

/// The order in which the engine hands cells to workers.
///
/// Results never depend on it (each cell's outcome lands in its own
/// slot, keyed by cell index); the knob exists so the determinism
/// suite can prove exactly that under adversarial interleavings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JobOrder {
    /// Row-major `(x, run)` — the historical claim order.
    #[default]
    RowMajor,
    /// Seeded Fisher–Yates shuffle of the claim order.
    Shuffled(u64),
}

/// Engine knobs beyond [`SweepConfig`].
#[derive(Clone)]
pub struct SweepOptions {
    /// Cells claimed per worker fetch (the lane-batch width K);
    /// clamped to at least 1. Defaults to `SAG_SWEEP_LANES` (read once
    /// per process), else 4.
    pub lanes: usize,
    /// Claim order (see [`JobOrder`]).
    pub order: JobOrder,
    /// A shared cache to reuse across sweep calls (warm starts across
    /// a whole figure); `None` builds a fresh per-call cache, disabled
    /// when `SAG_SWEEP_CACHE=0`.
    pub cache: Option<Arc<SweepCache>>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            lanes: default_lanes(),
            order: JobOrder::RowMajor,
            cache: None,
        }
    }
}

/// The `SAG_SWEEP_LANES` default, read once per process.
fn default_lanes() -> usize {
    static LANES: OnceLock<usize> = OnceLock::new();
    *LANES.get_or_init(|| {
        std::env::var("SAG_SWEEP_LANES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .filter(|&n: &usize| n >= 1)
            .unwrap_or(4)
    })
}

/// Whether `SAG_SWEEP_CACHE` leaves per-call caches enabled (default
/// yes; `0` disables), read once per process.
fn cache_enabled_by_env() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| !matches!(std::env::var("SAG_SWEEP_CACHE").as_deref(), Ok("0")))
}

/// One cell's raw outcome: `None` when the eval panicked or returned
/// the wrong metric arity (a *failed* run), `Some(metrics)` otherwise.
type LaneOutcome = Option<Vec<Option<f64>>>;

/// Batched, cached `sweep_multi`: runs `eval(ctx, x, seed)` for every
/// `(x, run)` cell with the default [`SweepOptions`].
///
/// Drop-in upgrade of [`crate::runner::sweep_multi`] for evals that
/// want the invariant cache; an eval that ignores `ctx` behaves — and
/// aggregates — exactly like the uncached runner.
pub fn sweep_multi_cached<X, F>(
    xs: &[X],
    n_metrics: usize,
    config: SweepConfig,
    eval: F,
) -> Vec<Vec<CellStats>>
where
    X: Copy + Sync,
    F: Fn(&BatchCtx<'_>, X, u64) -> Vec<Option<f64>> + Sync,
{
    sweep_multi_with(xs, n_metrics, config, SweepOptions::default(), eval)
}

/// [`sweep_multi_cached`] with explicit engine knobs.
pub fn sweep_multi_with<X, F>(
    xs: &[X],
    n_metrics: usize,
    config: SweepConfig,
    opts: SweepOptions,
    eval: F,
) -> Vec<Vec<CellStats>>
where
    X: Copy + Sync,
    F: Fn(&BatchCtx<'_>, X, u64) -> Vec<Option<f64>> + Sync,
{
    if n_metrics == 0 {
        return Vec::new();
    }
    let cache = opts.cache.clone().unwrap_or_else(|| {
        if cache_enabled_by_env() {
            SweepCache::new()
        } else {
            SweepCache::disabled()
        }
    });
    let stats_before = cache.stats();
    let ctx = BatchCtx { cache: &cache };

    let runs = config.runs;
    let n_cells = xs.len() * runs;

    // The sweep span: every cell span (on whatever thread) parents
    // under it, so a capture reconstructs into one tree.
    let _sweep_span = sag_obs::span("sweep");

    // SoA job arrays in claim order; `cell_of` maps a job back to its
    // canonical row-major cell slot, so the claim order can be
    // permuted freely without moving where results land.
    let mut cell_of: Vec<usize> = (0..n_cells).collect();
    if let JobOrder::Shuffled(seed) = opts.order {
        sag_testkit::rng::Rng::seed_from_u64(seed).shuffle(&mut cell_of);
    }
    let x_of: Vec<usize> = cell_of.iter().map(|&c| c / runs.max(1)).collect();
    let seed_of: Vec<u64> = cell_of
        .iter()
        .zip(&x_of)
        .map(|(&c, &i)| config.seed(i, c % runs.max(1)))
        .collect();

    // Lock-free outcome slots, sized up front: one per cell, written
    // exactly once by the worker that claimed the cell.
    let slots: Vec<OnceLock<LaneOutcome>> = (0..n_cells).map(|_| OnceLock::new()).collect();

    // Aggregating (buffered) recorders must not be written from racing
    // workers; feed them per-cell and fold in cell-index order below —
    // the same discipline as `sag_core::engine::run_zones`.
    let (buffered, live): (Vec<_>, Vec<_>) = sag_obs::local_stack()
        .into_iter()
        .partition(|r| r.buffered());
    let cell_collectors: Vec<Arc<sag_obs::Collector>> = if buffered.is_empty() {
        Vec::new()
    } else {
        (0..n_cells).map(|_| Default::default()).collect()
    };

    let process = |k: usize| {
        let cell = cell_of[k];
        let (x_idx, seed) = (x_of[k], seed_of[k]);
        let run_lane = || {
            // Isolate per-cell panics: a poisoned scenario must not
            // take down the other cells. `eval` is only observed
            // through its return value, so unwind safety is not a
            // correctness concern here.
            catch_unwind(AssertUnwindSafe(|| {
                let _cell_span = sag_obs::span_zone("sweep_cell", cell as u64);
                eval(&ctx, xs[x_idx], seed)
            }))
            .ok()
            .filter(|v| v.len() == n_metrics)
        };
        let outcome = match cell_collectors.get(cell) {
            Some(c) => sag_obs::with_local(c.clone(), run_lane),
            None => run_lane(),
        };
        let _ = slots[cell].set(outcome);
    };

    let threads = config.threads.max(1).min(n_cells.max(1));
    if threads <= 1 {
        for k in 0..n_cells {
            process(k);
        }
    } else {
        let lanes = opts.lanes.max(1);
        let next = AtomicUsize::new(0);
        let span_ctx = sag_obs::span_context();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    sag_obs::with_span_context(span_ctx, || {
                        sag_obs::with_local_stack(&live, || loop {
                            let start = next.fetch_add(lanes, Ordering::Relaxed);
                            if start >= n_cells {
                                break;
                            }
                            for k in start..(start + lanes).min(n_cells) {
                                process(k);
                            }
                        })
                    });
                });
            }
        });
    }

    // Deterministic fold of the buffered per-cell metrics.
    for collector in &cell_collectors {
        let summary = collector.summary();
        for recorder in &buffered {
            recorder.absorb(&summary);
        }
    }

    // Cache accounting, recorded once from the coordinator: totals are
    // order-invariant (each key is built exactly once), so collected
    // metrics stay identical across thread counts and job orders.
    let stats = cache.stats();
    sag_obs::counter("sweep.cells", n_cells as u64);
    sag_obs::counter(
        "sweep.cache_hits",
        stats.hits.saturating_sub(stats_before.hits),
    );
    sag_obs::counter(
        "sweep.cache_misses",
        stats.misses.saturating_sub(stats_before.misses),
    );

    aggregate(xs.len(), runs, n_metrics, &slots)
}

/// Transposes the outcome slots into per-metric [`CellStats`] series.
fn aggregate(
    n_xs: usize,
    runs: usize,
    n_metrics: usize,
    slots: &[OnceLock<LaneOutcome>],
) -> Vec<Vec<CellStats>> {
    (0..n_metrics)
        .map(|m| {
            (0..n_xs)
                .map(|i| {
                    let mut row: Vec<Option<f64>> = Vec::with_capacity(runs);
                    let mut failed = 0;
                    for r in 0..runs {
                        match slots[i * runs + r].get() {
                            Some(Some(vals)) => row.push(vals[m]),
                            // A failed run (panic / wrong arity), or —
                            // unreachably, every claim writes its slot
                            // — an unwritten slot: fail closed.
                            Some(None) | None => {
                                failed += 1;
                                row.push(None);
                            }
                        }
                    }
                    CellStats::from_runs_with_failures(&row, failed)
                })
                .collect()
        })
        .collect()
}

/// The pre-existing per-cell sweep path, kept as the differential
/// reference: one job per `(x, run)` cell, a mutex-guarded outcome
/// grid, and a build-every-time cache, exactly as the runner worked
/// before the batched engine. [`sweep_multi_with`] must stay
/// byte-identical to this at any thread count, cache state and job
/// order — the determinism suite and `bench_sweep` both diff against
/// it.
pub fn sweep_multi_reference<X, F>(
    xs: &[X],
    n_metrics: usize,
    config: SweepConfig,
    eval: F,
) -> Vec<Vec<CellStats>>
where
    X: Copy + Sync,
    F: Fn(&BatchCtx<'_>, X, u64) -> Vec<Option<f64>> + Sync,
{
    if n_metrics == 0 {
        return Vec::new();
    }
    let cache = SweepCache::disabled();
    let ctx = BatchCtx { cache: &cache };
    // outcomes[i][m][r]; failed[i][r] marks crashed runs.
    let outcomes: Vec<Vec<Mutex<Vec<Option<f64>>>>> = xs
        .iter()
        .map(|_| {
            (0..n_metrics)
                .map(|_| Mutex::new(vec![None; config.runs]))
                .collect()
        })
        .collect();
    let failed: Vec<Mutex<Vec<bool>>> = xs
        .iter()
        .map(|_| Mutex::new(vec![false; config.runs]))
        .collect();

    let jobs: Vec<(usize, usize)> = (0..xs.len())
        .flat_map(|i| (0..config.runs).map(move |r| (i, r)))
        .collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..config.threads.max(1).min(jobs.len().max(1)) {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= jobs.len() {
                    break;
                }
                let (i, r) = jobs[k];
                let vals = catch_unwind(AssertUnwindSafe(|| eval(&ctx, xs[i], config.seed(i, r))))
                    .ok()
                    .filter(|v| v.len() == n_metrics);
                match vals {
                    Some(vals) => {
                        for (m, v) in vals.into_iter().enumerate() {
                            outcomes[i][m].lock().expect("no worker poisons a cell")[r] = v;
                        }
                    }
                    None => {
                        failed[i].lock().expect("no worker poisons a cell")[r] = true;
                    }
                }
            });
        }
    });

    (0..n_metrics)
        .map(|m| {
            xs.iter()
                .enumerate()
                .map(|(i, _)| {
                    let n_failed = failed[i]
                        .lock()
                        .expect("workers joined cleanly")
                        .iter()
                        .filter(|&&f| f)
                        .count();
                    CellStats::from_runs_with_failures(
                        &outcomes[i][m].lock().expect("workers joined cleanly"),
                        n_failed,
                    )
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::FpHasher;

    fn cfg(runs: usize, threads: usize) -> SweepConfig {
        SweepConfig {
            runs,
            base_seed: 0,
            threads,
        }
    }

    #[test]
    fn cache_builds_once_per_key() {
        let cache = SweepCache::new();
        let calls = AtomicU64::new(0);
        let fp = FpHasher::new("k").finish();
        for _ in 0..5 {
            let v = cache.cached(fp, || {
                calls.fetch_add(1, Ordering::Relaxed);
                41u64 + 1
            });
            assert_eq!(*v, 42);
        }
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (4, 1, 1));
    }

    #[test]
    fn cache_separates_types_under_one_fingerprint() {
        let cache = SweepCache::new();
        let fp = FpHasher::new("k").finish();
        let a = cache.cached(fp, || 7u64);
        let b = cache.cached(fp, || "seven".to_string());
        assert_eq!(*a, 7);
        assert_eq!(*b, "seven");
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn disabled_cache_always_builds() {
        let cache = SweepCache::disabled();
        let calls = AtomicU64::new(0);
        let fp = FpHasher::new("k").finish();
        for _ in 0..3 {
            cache.cached(fp, || calls.fetch_add(1, Ordering::Relaxed));
        }
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn batched_matches_reference_on_a_synthetic_sweep() {
        let xs: Vec<f64> = vec![1.0, 2.0, 3.0];
        let eval = |ctx: &BatchCtx<'_>, x: f64, seed: u64| {
            let mut h = FpHasher::new("base");
            h.write_f64(x);
            let base = ctx.cached(h.finish(), || x * 10.0);
            vec![Some(*base + seed as f64), seed.is_multiple_of(2).then_some(x)]
        };
        let reference = sweep_multi_reference(&xs, 2, cfg(4, 1), eval);
        for threads in [1, 3] {
            for order in [JobOrder::RowMajor, JobOrder::Shuffled(9)] {
                let got = sweep_multi_with(
                    &xs,
                    2,
                    cfg(4, threads),
                    SweepOptions {
                        order,
                        ..Default::default()
                    },
                    eval,
                );
                assert_eq!(got, reference, "threads={threads} order={order:?}");
            }
        }
    }

    #[test]
    fn warm_cache_reuses_entries_across_sweeps() {
        let xs = [1usize, 2];
        let cache = SweepCache::new();
        let eval = |ctx: &BatchCtx<'_>, x: usize, _seed: u64| {
            let mut h = FpHasher::new("artifact");
            h.write_usize(x);
            vec![Some(*ctx.cached(h.finish(), || x as f64))]
        };
        let opts = || SweepOptions {
            cache: Some(cache.clone()),
            ..Default::default()
        };
        let cold = sweep_multi_with(&xs, 1, cfg(2, 2), opts(), eval);
        let after_cold = cache.stats();
        assert_eq!(after_cold.misses, 2, "one build per distinct x");
        let warm = sweep_multi_with(&xs, 1, cfg(2, 2), opts(), eval);
        let after_warm = cache.stats();
        assert_eq!(after_warm.misses, 2, "warm sweep rebuilt nothing");
        assert_eq!(cold, warm);
    }

    #[test]
    fn panicking_lane_is_isolated_and_counted() {
        let xs = [0usize, 1];
        let series = sweep_multi_cached(&xs, 1, cfg(4, 2), |_ctx, x, seed| {
            if x == 1 && seed % 2 == 0 {
                panic!("injected fault");
            }
            vec![Some(1.0)]
        });
        assert_eq!(series[0][0].failed_runs, 0);
        assert_eq!(series[0][1].failed_runs, 2);
        assert_eq!(series[0][1].feasible_runs, 2);
    }

    #[test]
    fn zero_metrics_returns_empty() {
        assert!(sweep_multi_cached(&[1.0f64], 0, cfg(2, 1), |_, _, _| vec![]).is_empty());
        assert!(sweep_multi_reference(&[1.0f64], 0, cfg(2, 1), |_, _, _| vec![]).is_empty());
    }

    #[test]
    fn lane_width_extremes_do_not_change_results() {
        let xs = [1.0f64, 2.0, 3.0];
        let eval = |_: &BatchCtx<'_>, x: f64, seed: u64| vec![Some(x * seed as f64)];
        let reference = sweep_multi_reference(&xs, 1, cfg(3, 1), eval);
        for lanes in [1, 2, 64] {
            let got = sweep_multi_with(
                &xs,
                1,
                cfg(3, 2),
                SweepOptions {
                    lanes,
                    ..Default::default()
                },
                eval,
            );
            assert_eq!(got, reference, "lanes={lanes}");
        }
    }
}
