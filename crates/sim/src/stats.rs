//! Aggregation helpers for the paper's 10-run averages.

/// Mean of a sample; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Sample standard deviation (n−1 denominator); `None` for fewer than two
/// samples.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs).expect("non-empty");
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    Some(var.sqrt())
}

/// Summary of one sweep cell: which runs succeeded and their average.
#[derive(Debug, Clone, PartialEq)]
pub struct CellStats {
    /// Mean over the successful runs (`None` when every run failed, the
    /// "no feasible solutions" regime of Fig. 3).
    pub mean: Option<f64>,
    /// Number of successful (feasible) runs.
    pub feasible_runs: usize,
    /// Total runs attempted.
    pub total_runs: usize,
    /// Runs that *crashed* (panicked inside `eval` or returned the wrong
    /// metric arity) rather than merely reporting infeasibility. They
    /// count toward `total_runs` but never toward `feasible_runs`.
    pub failed_runs: usize,
    /// Runs that completed and reported infeasibility (`None`). Always
    /// `total_runs − feasible_runs − failed_runs`: crashed runs are
    /// *not* infeasible — they never got to answer — so they are
    /// excluded here and from [`CellStats::infeasibility_rate`].
    pub infeasible_runs: usize,
}

impl CellStats {
    /// Aggregates per-run outcomes (`None` = infeasible run).
    pub fn from_runs(outcomes: &[Option<f64>]) -> Self {
        CellStats::from_runs_with_failures(outcomes, 0)
    }

    /// Aggregates per-run outcomes where `failed_runs` of the `None`
    /// entries are crashes rather than infeasibility reports; the
    /// remaining `None`s are counted as genuinely infeasible runs.
    pub fn from_runs_with_failures(outcomes: &[Option<f64>], failed_runs: usize) -> Self {
        let ok: Vec<f64> = outcomes.iter().flatten().copied().collect();
        CellStats {
            mean: mean(&ok),
            feasible_runs: ok.len(),
            total_runs: outcomes.len(),
            failed_runs,
            infeasible_runs: outcomes
                .len()
                .saturating_sub(ok.len())
                .saturating_sub(failed_runs),
        }
    }

    /// Fraction of *completed* runs that reported infeasibility:
    /// `infeasible / (total − failed)`. Crashed runs are excluded from
    /// the denominator — a panic is not an infeasibility verdict, and
    /// counting it as one inflated the rates this method replaces.
    /// `None` when no run completed.
    pub fn infeasibility_rate(&self) -> Option<f64> {
        let completed = self.total_runs.saturating_sub(self.failed_runs);
        (completed > 0).then(|| self.infeasible_runs as f64 / completed as f64)
    }

    /// Formats as the paper's figures would show it: the mean, or `N/A`
    /// when everything was infeasible. Crashed runs are only mentioned
    /// when present, so the output is byte-identical to older releases
    /// whenever `failed_runs == 0` (golden files depend on that).
    pub fn display(&self) -> String {
        let base = match self.mean {
            Some(m) => {
                if self.feasible_runs < self.total_runs {
                    format!("{m:.2} ({}/{} ok)", self.feasible_runs, self.total_runs)
                } else {
                    format!("{m:.2}")
                }
            }
            None => "N/A".to_string(),
        };
        if self.failed_runs > 0 {
            format!("{base} [{} crashed]", self.failed_runs)
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(std_dev(&[1.0]), None);
        let s = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s - 2.138).abs() < 1e-3);
    }

    #[test]
    fn cell_stats_aggregation() {
        let c = CellStats::from_runs(&[Some(1.0), None, Some(3.0)]);
        assert_eq!(c.mean, Some(2.0));
        assert_eq!(c.feasible_runs, 2);
        assert_eq!(c.total_runs, 3);
        assert!(c.display().contains("2/3"));
        let all_bad = CellStats::from_runs(&[None, None]);
        assert_eq!(all_bad.display(), "N/A");
        let clean = CellStats::from_runs(&[Some(2.0), Some(2.0)]);
        assert_eq!(clean.display(), "2.00");
    }

    #[test]
    fn failed_runs_surface_in_display_only_when_present() {
        let c = CellStats::from_runs_with_failures(&[Some(1.0), None, None], 1);
        assert_eq!(c.failed_runs, 1);
        assert!(c.display().contains("1 crashed"));
        // No crashes → byte-identical to the plain rendering.
        let clean = CellStats::from_runs_with_failures(&[Some(2.0)], 0);
        assert_eq!(clean.display(), "2.00");
    }

    #[test]
    fn failed_runs_are_not_infeasible_runs() {
        // 4 runs: 1 feasible, 1 infeasible (a real `None` verdict),
        // 2 crashed. The regression this pins: crashes used to be
        // indistinguishable from infeasibility (`failed_runs` vs
        // `total_runs − feasible_runs` conflated downstream).
        let c = CellStats::from_runs_with_failures(&[Some(1.0), None, None, None], 2);
        assert_eq!(c.feasible_runs, 1);
        assert_eq!(c.failed_runs, 2);
        assert_eq!(c.infeasible_runs, 1);
        assert_ne!(c.failed_runs, c.total_runs - c.feasible_runs);
        // Rate denominator = completed runs only (4 − 2 crashed = 2).
        assert_eq!(c.infeasibility_rate(), Some(0.5));
    }

    #[test]
    fn infeasibility_rate_is_none_when_nothing_completed() {
        let c = CellStats::from_runs_with_failures(&[None, None], 2);
        assert_eq!(c.infeasible_runs, 0);
        assert_eq!(c.infeasibility_rate(), None);
        let empty = CellStats::from_runs(&[]);
        assert_eq!(empty.infeasibility_rate(), None);
    }

    #[test]
    fn infeasible_count_saturates_on_inconsistent_failed_claim() {
        // More claimed failures than `None` slots must not underflow.
        let c = CellStats::from_runs_with_failures(&[Some(1.0), None], 5);
        assert_eq!(c.infeasible_runs, 0);
    }
}
