//! Terminal scatter plots — a dependency-free renderer for topology
//! dumps and SNR heatmaps, so `repro fig6` and the `plan` CLI can show
//! the paper's Fig. 6 panels directly in the terminal.

use sag_geom::{Point, Rect};

/// A character canvas over a world-coordinate viewport.
#[derive(Debug, Clone)]
pub struct Canvas {
    viewport: Rect,
    cols: usize,
    rows: usize,
    cells: Vec<char>,
}

impl Canvas {
    /// Creates a canvas of `cols × rows` characters over `viewport`.
    ///
    /// # Panics
    /// Panics if either dimension is zero or the viewport is degenerate.
    pub fn new(viewport: Rect, cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "canvas must have positive size");
        assert!(
            viewport.width() > 0.0 && viewport.height() > 0.0,
            "viewport must have positive area"
        );
        Canvas {
            viewport,
            cols,
            rows,
            cells: vec![' '; cols * rows],
        }
    }

    /// Canvas width in characters.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Canvas height in characters.
    pub fn rows(&self) -> usize {
        self.rows
    }

    fn index_of(&self, p: Point) -> Option<usize> {
        if !self.viewport.contains(p) {
            return None;
        }
        let fx = (p.x - self.viewport.min().x) / self.viewport.width();
        let fy = (p.y - self.viewport.min().y) / self.viewport.height();
        let col = ((fx * self.cols as f64) as usize).min(self.cols - 1);
        // Rows render top-down; world y grows upward.
        let row = self.rows - 1 - ((fy * self.rows as f64) as usize).min(self.rows - 1);
        Some(row * self.cols + col)
    }

    /// Plots a single point with glyph `ch` (silently clipped outside
    /// the viewport). Later plots overwrite earlier ones.
    pub fn plot(&mut self, p: Point, ch: char) {
        if let Some(i) = self.index_of(p) {
            self.cells[i] = ch;
        }
    }

    /// Plots a polyline between two points with glyph `ch`, sampled at
    /// (roughly) one step per cell.
    pub fn line(&mut self, a: Point, b: Point, ch: char) {
        let cell_w = self.viewport.width() / self.cols as f64;
        let cell_h = self.viewport.height() / self.rows as f64;
        let step = cell_w.min(cell_h) / 2.0;
        let len = a.distance(b);
        let n = (len / step).ceil().max(1.0) as usize;
        for k in 0..=n {
            self.plot(a.lerp(b, k as f64 / n as f64), ch);
        }
    }

    /// Renders the canvas with a simple border.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity((self.cols + 3) * (self.rows + 2));
        out.push('+');
        out.extend(std::iter::repeat_n('-', self.cols));
        out.push_str("+\n");
        for row in 0..self.rows {
            out.push('|');
            out.extend(self.cells[row * self.cols..(row + 1) * self.cols].iter());
            out.push_str("|\n");
        }
        out.push('+');
        out.extend(std::iter::repeat_n('-', self.cols));
        out.push('+');
        out
    }
}

/// Renders a topology dump as ASCII art: `.` subscribers, `B` base
/// stations, `o` coverage relays, `x` connectivity relays, `·` links.
pub fn render_topology(dump: &crate::experiments::fig6::TopologyDump, field: Rect) -> String {
    let mut canvas = Canvas::new(field, 72, 30);
    for (a, b) in &dump.links {
        canvas.line(*a, *b, '\'');
    }
    for p in &dump.subscribers {
        canvas.plot(*p, '.');
    }
    for p in &dump.connectivity_relays {
        canvas.plot(*p, 'x');
    }
    for p in &dump.coverage_relays {
        canvas.plot(*p, 'o');
    }
    for p in &dump.base_stations {
        canvas.plot(*p, 'B');
    }
    format!(
        "{}\n{}\n  legend: B=base station  o=coverage RS  x=connectivity RS  .=subscriber  '=link",
        dump.name,
        canvas.render()
    )
}

/// Renders an intensity grid (row-major, `rows × cols`, values in
/// `[0, 1]`) as ASCII shades from light to dark.
///
/// # Panics
/// Panics if `values.len() != rows * cols`.
pub fn render_heatmap(values: &[f64], cols: usize, rows: usize) -> String {
    assert_eq!(values.len(), cols * rows, "grid shape mismatch");
    const SHADES: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let mut out = String::with_capacity((cols + 3) * (rows + 2));
    out.push('+');
    out.extend(std::iter::repeat_n('-', cols));
    out.push_str("+\n");
    for row in 0..rows {
        out.push('|');
        for col in 0..cols {
            let v = values[row * cols + col].clamp(0.0, 1.0);
            let idx = ((v * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1);
            out.push(SHADES[idx]);
        }
        out.push_str("|\n");
    }
    out.push('+');
    out.extend(std::iter::repeat_n('-', cols));
    out.push('+');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> Rect {
        Rect::centered_square(100.0)
    }

    #[test]
    fn plot_lands_where_expected() {
        let mut c = Canvas::new(field(), 10, 10);
        c.plot(Point::new(0.0, 0.0), 'X'); // centre
        let rendered = c.render();
        let lines: Vec<&str> = rendered.lines().collect();
        // Centre of a 10×10 grid: row 5 or 4, col 5 (border offset +1).
        let has_x = lines[5].contains('X') || lines[6].contains('X');
        assert!(has_x, "{rendered}");
    }

    #[test]
    fn corners_map_to_corners() {
        let mut c = Canvas::new(field(), 20, 10);
        c.plot(Point::new(-50.0, -50.0), 'A'); // bottom-left
        c.plot(Point::new(49.9, 49.9), 'Z'); // top-right
        let rendered = c.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert!(lines[1].ends_with("Z|") || lines[1].contains('Z'));
        assert!(lines[10].starts_with("|A") || lines[10].contains('A'));
    }

    #[test]
    fn outside_points_clipped() {
        let mut c = Canvas::new(field(), 5, 5);
        c.plot(Point::new(500.0, 0.0), 'X');
        assert!(!c.render().contains('X'));
    }

    #[test]
    fn line_connects() {
        let mut c = Canvas::new(field(), 20, 20);
        c.line(Point::new(-40.0, 0.0), Point::new(40.0, 0.0), '-');
        let drawn = c.render().chars().filter(|&ch| ch == '-').count();
        // Border dashes (40) plus a horizontal line of ~16 cells.
        assert!(drawn > 50, "only {drawn} dashes");
    }

    #[test]
    fn heatmap_shades() {
        let vals = vec![0.0, 0.5, 1.0, 0.25];
        let h = render_heatmap(&vals, 2, 2);
        assert!(h.contains('@'));
        assert!(h.lines().count() == 4);
    }

    #[test]
    #[should_panic]
    fn heatmap_shape_checked() {
        render_heatmap(&[0.0; 3], 2, 2);
    }

    #[test]
    #[should_panic]
    fn zero_size_canvas_panics() {
        Canvas::new(field(), 0, 5);
    }
}
