//! SNR field maps: sample the achieved downlink SNR over a grid of probe
//! points, for interference diagnostics and terminal heatmaps.
//!
//! At each probe the serving relay is the nearest placed relay (matching
//! the pipeline's assignment rule); the value reported is the
//! interference-limited SNR of Definition 2 under the given powers.

use sag_core::model::Scenario;
use sag_geom::{GridSpec, Point};
use sag_radio::snr;

/// A sampled SNR field over the scenario's playing field.
#[derive(Debug, Clone)]
pub struct SnrField {
    /// Grid geometry the samples follow (row-major, bottom row first).
    pub grid: GridSpec,
    /// Linear SNR per probe point (`f64::INFINITY` where there is no
    /// interference).
    pub values: Vec<f64>,
}

impl SnrField {
    /// Samples the field with `cell`-sized probes.
    ///
    /// # Panics
    /// Panics if `relays` is empty or `powers` has mismatched length.
    pub fn sample(scenario: &Scenario, relays: &[Point], powers: &[f64], cell: f64) -> Self {
        assert!(!relays.is_empty(), "need at least one relay to probe SNR");
        assert_eq!(relays.len(), powers.len(), "relays/powers length mismatch");
        let grid = GridSpec::new(scenario.field, cell);
        let model = scenario.params.link.model();
        let values = grid
            .centers()
            .map(|probe| {
                let rx: Vec<f64> = relays
                    .iter()
                    .zip(powers)
                    .map(|(r, &p)| model.received_power(p, r.distance(probe)))
                    .collect();
                let serving = (0..rx.len())
                    .max_by(|&a, &b| sag_geom::float::total_cmp(&rx[a], &rx[b]))
                    .expect("non-empty relays");
                snr::snr_interference_limited(&rx, serving)
            })
            .collect();
        SnrField { grid, values }
    }

    /// Fraction of probes meeting the scenario's β threshold.
    pub fn coverage_fraction(&self, beta: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let ok = self.values.iter().filter(|&&v| v >= beta).count();
        ok as f64 / self.values.len() as f64
    }

    /// Normalises to `[0, 1]` for rendering: SNR in dB clamped to
    /// `[floor_db, ceil_db]` and scaled.
    pub fn normalized_db(&self, floor_db: f64, ceil_db: f64) -> Vec<f64> {
        assert!(floor_db < ceil_db, "floor must be below ceil");
        self.values
            .iter()
            .map(|&v| {
                let db = if v <= 0.0 {
                    floor_db
                } else if v.is_infinite() {
                    ceil_db
                } else {
                    10.0 * v.log10()
                };
                ((db - floor_db) / (ceil_db - floor_db)).clamp(0.0, 1.0)
            })
            .collect()
    }

    /// Renders an ASCII heatmap (dark = high SNR), top row = max y.
    pub fn render(&self, floor_db: f64, ceil_db: f64) -> String {
        let cols = self.grid.cols();
        let rows = self.grid.rows();
        let norm = self.normalized_db(floor_db, ceil_db);
        // Grid centres are bottom-row-first; the renderer draws top-down.
        let mut flipped = vec![0.0; norm.len()];
        for row in 0..rows {
            let src = &norm[row * cols..(row + 1) * cols];
            flipped[(rows - 1 - row) * cols..(rows - row) * cols].copy_from_slice(src);
        }
        crate::plot::render_heatmap(&flipped, cols, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ScenarioSpec;
    use sag_core::samc::samc;

    fn setup() -> (Scenario, Vec<Point>, Vec<f64>) {
        let sc = ScenarioSpec {
            field_size: 300.0,
            n_subscribers: 6,
            ..Default::default()
        }
        .build(2);
        let sol = samc(&sc).unwrap();
        let powers = vec![sc.params.link.pmax(); sol.n_relays()];
        (sc.clone(), sol.relays, powers)
    }

    #[test]
    fn samples_cover_grid() {
        let (sc, relays, powers) = setup();
        let field = SnrField::sample(&sc, &relays, &powers, 30.0);
        assert_eq!(field.values.len(), field.grid.len());
        assert!(field.values.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn single_relay_field_is_infinite() {
        let (sc, relays, _) = setup();
        let one = vec![relays[0]];
        let field = SnrField::sample(&sc, &one, &[1.0], 50.0);
        assert!(field.values.iter().all(|v| v.is_infinite()));
        assert_eq!(field.coverage_fraction(1e6), 1.0);
    }

    #[test]
    fn coverage_fraction_monotone_in_beta() {
        let (sc, relays, powers) = setup();
        let field = SnrField::sample(&sc, &relays, &powers, 25.0);
        let loose = field.coverage_fraction(1e-3);
        let tight = field.coverage_fraction(10.0);
        assert!(loose >= tight);
    }

    #[test]
    fn normalisation_bounds() {
        let (sc, relays, powers) = setup();
        let field = SnrField::sample(&sc, &relays, &powers, 40.0);
        for v in field.normalized_db(-20.0, 40.0) {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn render_has_grid_shape() {
        let (sc, relays, powers) = setup();
        let field = SnrField::sample(&sc, &relays, &powers, 30.0);
        let art = field.render(-20.0, 40.0);
        assert_eq!(art.lines().count(), field.grid.rows() + 2);
    }

    #[test]
    #[should_panic]
    fn empty_relays_panics() {
        let (sc, _, _) = setup();
        SnrField::sample(&sc, &[], &[], 30.0);
    }
}
