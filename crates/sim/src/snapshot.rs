//! Compact binary scenario snapshots.
//!
//! A fixed little-endian layout over plain byte slices: magic, version,
//! field size, link parameters, then subscriber and base-station tables.
//! Used by the topology-export example to persist the exact scenario a
//! plot came from, and handy for shipping failing cases into tests.

use sag_core::model::{BaseStation, NetworkParams, Scenario, Subscriber};
use sag_geom::{Point, Rect};
use sag_radio::{units::Db, LinkBudget, TwoRay};

const MAGIC: u32 = 0x5341_4731; // "SAG1"
const VERSION: u16 = 1;

/// Errors from [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Buffer too short for the declared structure.
    Truncated,
    /// Magic number mismatch — not a snapshot.
    BadMagic,
    /// Unsupported snapshot version.
    BadVersion(u16),
    /// Structurally well-formed bytes carrying invalid values (NaN/∞
    /// coordinates, non-positive radii or powers, stations outside the
    /// field, ...). The payload names the first rejected field.
    Invalid(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot buffer truncated"),
            SnapshotError::BadMagic => write!(f, "not a scenario snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Invalid(what) => write!(f, "snapshot carries invalid data: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Little-endian cursor over a byte slice; every read is
/// bounds-checked into [`SnapshotError::Truncated`].
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N], SnapshotError> {
        let end = self.pos.checked_add(N).ok_or(SnapshotError::Truncated)?;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or(SnapshotError::Truncated)?;
        self.pos = end;
        Ok(bytes.try_into().expect("slice has length N"))
    }

    fn u16_le(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take()?))
    }

    fn u32_le(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take()?))
    }

    fn f64_le(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_le_bytes(self.take()?))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

fn put_u16_le(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32_le(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64_le(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Serialises a scenario to bytes.
pub fn encode(scenario: &Scenario) -> Vec<u8> {
    let mut buf = Vec::with_capacity(
        64 + scenario.subscribers.len() * 24 + scenario.base_stations.len() * 16,
    );
    put_u32_le(&mut buf, MAGIC);
    put_u16_le(&mut buf, VERSION);
    // Field (stored as min/max corners).
    put_f64_le(&mut buf, scenario.field.min().x);
    put_f64_le(&mut buf, scenario.field.min().y);
    put_f64_le(&mut buf, scenario.field.max().x);
    put_f64_le(&mut buf, scenario.field.max().y);
    // Link parameters.
    let link = &scenario.params.link;
    put_f64_le(&mut buf, link.model().gain());
    put_f64_le(&mut buf, link.model().alpha());
    put_f64_le(&mut buf, link.pmax());
    put_f64_le(&mut buf, link.beta());
    put_f64_le(&mut buf, link.noise());
    put_f64_le(&mut buf, link.bandwidth());
    put_f64_le(&mut buf, scenario.params.nmax);
    // Stations.
    put_u32_le(&mut buf, scenario.subscribers.len() as u32);
    for s in &scenario.subscribers {
        put_f64_le(&mut buf, s.position.x);
        put_f64_le(&mut buf, s.position.y);
        put_f64_le(&mut buf, s.distance_req);
    }
    put_u32_le(&mut buf, scenario.base_stations.len() as u32);
    for b in &scenario.base_stations {
        put_f64_le(&mut buf, b.position.x);
        put_f64_le(&mut buf, b.position.y);
    }
    buf
}

/// Deserialises a scenario from bytes.
///
/// Every value is validated *before* reaching the model constructors
/// (which assert on bad input), so arbitrary — even adversarial — bytes
/// yield a typed [`SnapshotError`], never a panic. A successful decode
/// additionally passes [`Scenario::validate`], so `Ok` implies a fully
/// valid scenario.
///
/// # Errors
/// [`SnapshotError`] on malformed input.
pub fn decode(buf: &[u8]) -> Result<Scenario, SnapshotError> {
    let mut r = Reader::new(buf);
    if r.u32_le().map_err(|_| SnapshotError::Truncated)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u16_le()?;
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let check = |v: f64, pred: fn(f64) -> bool, what: &'static str| {
        if v.is_finite() && pred(v) {
            Ok(v)
        } else {
            Err(SnapshotError::Invalid(what))
        }
    };
    let any = |_: f64| true;
    let positive = |v: f64| v > 0.0;
    let non_negative = |v: f64| v >= 0.0;
    let min = Point::new(
        check(r.f64_le()?, any, "field min x")?,
        check(r.f64_le()?, any, "field min y")?,
    );
    let max = Point::new(
        check(r.f64_le()?, any, "field max x")?,
        check(r.f64_le()?, any, "field max y")?,
    );
    let gain = check(r.f64_le()?, positive, "link gain")?;
    let alpha = check(r.f64_le()?, |v| v >= 1.0, "path-loss exponent")?;
    let pmax = check(r.f64_le()?, positive, "max power")?;
    let beta = check(r.f64_le()?, non_negative, "SNR threshold")?;
    let noise = check(r.f64_le()?, non_negative, "noise")?;
    let bandwidth = check(r.f64_le()?, positive, "bandwidth")?;
    let nmax = check(r.f64_le()?, positive, "nmax")?;
    let n_subs = r.u32_le()? as usize;
    if r.remaining() < n_subs.saturating_mul(24) {
        return Err(SnapshotError::Truncated);
    }
    let mut subscribers = Vec::with_capacity(n_subs);
    for _ in 0..n_subs {
        let p = Point::new(
            check(r.f64_le()?, any, "subscriber x")?,
            check(r.f64_le()?, any, "subscriber y")?,
        );
        let d = check(r.f64_le()?, positive, "subscriber distance request")?;
        subscribers.push(Subscriber::new(p, d));
    }
    let n_bs = r.u32_le()? as usize;
    if r.remaining() < n_bs.saturating_mul(16) {
        return Err(SnapshotError::Truncated);
    }
    let mut base_stations = Vec::with_capacity(n_bs);
    for _ in 0..n_bs {
        base_stations.push(BaseStation::new(Point::new(
            check(r.f64_le()?, any, "base station x")?,
            check(r.f64_le()?, any, "base station y")?,
        )));
    }
    let link = LinkBudget::builder()
        .model(TwoRay::new(gain, alpha))
        .max_power(pmax)
        .snr_threshold(Db::from_linear(beta))
        .noise(noise)
        .bandwidth(bandwidth)
        .build();
    let scenario = Scenario::new(
        Rect::from_corners(min, max),
        subscribers,
        base_stations,
        NetworkParams::new(link, nmax),
    )
    .map_err(|_| SnapshotError::Invalid("empty station list"))?;
    // Deep validation (degenerate field, stations outside the field, ...)
    // so Ok ⇒ the scenario is safe to feed to any solver.
    scenario
        .validate()
        .map_err(|_| SnapshotError::Invalid("scenario fails deep validation"))?;
    Ok(scenario)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ScenarioSpec;
    use sag_testkit::prelude::*;

    #[test]
    fn roundtrip() {
        let sc = ScenarioSpec::default().build(5);
        let bytes = encode(&sc);
        let back = decode(&bytes).unwrap();
        assert_eq!(sc, back);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut b = Vec::new();
        put_u32_le(&mut b, 0xDEAD_BEEF);
        put_u16_le(&mut b, 1);
        assert_eq!(decode(&b), Err(SnapshotError::BadMagic));
    }

    #[test]
    fn truncated_rejected() {
        let sc = ScenarioSpec::default().build(5);
        let bytes = encode(&sc);
        assert_eq!(
            decode(&bytes[..bytes.len() - 3]),
            Err(SnapshotError::Truncated)
        );
    }

    #[test]
    fn every_prefix_rejected_cleanly() {
        // No prefix may panic or decode successfully; each must report a
        // structured error (Truncated once the magic/version fit).
        let sc = ScenarioSpec::default().build(5);
        let bytes = encode(&sc);
        for cut in 0..bytes.len() - 1 {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn version_checked() {
        let mut b = Vec::new();
        put_u32_le(&mut b, MAGIC);
        put_u16_le(&mut b, 99);
        assert_eq!(decode(&b), Err(SnapshotError::BadVersion(99)));
    }

    #[test]
    fn declared_length_overflow_rejected() {
        // A subscriber count far beyond the buffer must fail fast, not
        // allocate or overflow.
        let mut b = Vec::new();
        put_u32_le(&mut b, MAGIC);
        put_u16_le(&mut b, VERSION);
        // Valid field corners and link parameters...
        for v in [
            -250.0, -250.0, 250.0, 250.0, // field
            1.0, 3.0, 1.0, 0.1, 0.0, 1.0, 1e-9, // gain α pmax β noise bw nmax
        ] {
            put_f64_le(&mut b, v);
        }
        // ...then an absurd subscriber count.
        put_u32_le(&mut b, u32::MAX);
        assert_eq!(decode(&b), Err(SnapshotError::Truncated));
    }

    #[test]
    fn poisoned_values_rejected_not_panicking() {
        // NaN gain in an otherwise valid header must be a typed error.
        let sc = ScenarioSpec::default().build(5);
        let mut bytes = encode(&sc);
        // gain is the 5th f64 after the 6-byte header.
        let gain_off = 6 + 4 * 8;
        bytes[gain_off..gain_off + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(SnapshotError::Invalid(_))));
    }

    prop! {
        /// Random well-formed scenarios round-trip exactly.
        fn prop_random_snapshots_roundtrip(seed in 0u64..200, n in 1usize..12) {
            let spec = ScenarioSpec {
                n_subscribers: n,
                ..Default::default()
            };
            let sc = spec.build(seed);
            let back = decode(&encode(&sc));
            prop_assert_eq!(back.as_ref(), Ok(&sc));
        }
    }

    prop! {
        /// Byte-flipped snapshots never panic: they either decode to a
        /// scenario that passes deep validation, or yield a typed error.
        fn prop_byte_flips_never_panic(seed in 0u64..500) {
            let mut rng = Rng::seed_from_u64(seed);
            let spec = ScenarioSpec {
                n_subscribers: 1 + (seed as usize % 8),
                ..Default::default()
            };
            let mut bytes = encode(&spec.build(seed));
            // Flip 1–4 random bits/bytes anywhere in the buffer.
            for _ in 0..rng.gen_range(1usize..5) {
                let at = rng.gen_range(0usize..bytes.len());
                bytes[at] ^= 1 << rng.gen_range(0u64..8) as u8;
            }
            match decode(&bytes) {
                Ok(sc) => prop_assert!(sc.validate().is_ok()),
                Err(e) => prop_assert!(!e.to_string().is_empty()),
            }
        }
    }

    prop! {
        /// Random garbage (non-snapshot bytes) never panics either.
        fn prop_random_bytes_never_panic(seed in 0u64..300) {
            let mut rng = Rng::seed_from_u64(seed);
            let len = rng.gen_range(0usize..256);
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            prop_assert!(decode(&bytes).is_err() || decode(&bytes).is_ok());
        }
    }

    #[test]
    fn roundtrip_preserves_link_budget() {
        let spec = ScenarioSpec {
            snr_db: -25.0,
            pmax: 2.0,
            ..Default::default()
        };
        let sc = spec.build(9);
        let back = decode(&encode(&sc)).unwrap();
        assert!((back.params.link.beta() - sc.params.link.beta()).abs() < 1e-15);
        assert_eq!(back.params.link.pmax(), 2.0);
    }
}
