//! Compact binary scenario snapshots.
//!
//! A fixed little-endian layout over plain byte slices: magic, version,
//! field size, link parameters, then subscriber and base-station tables.
//! Used by the topology-export example to persist the exact scenario a
//! plot came from, and handy for shipping failing cases into tests.

use sag_core::model::{BaseStation, NetworkParams, Scenario, Subscriber};
use sag_geom::{Point, Rect};
use sag_radio::{units::Db, LinkBudget, TwoRay};

const MAGIC: u32 = 0x5341_4731; // "SAG1"
const VERSION: u16 = 1;

/// Errors from [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Buffer too short for the declared structure.
    Truncated,
    /// Magic number mismatch — not a snapshot.
    BadMagic,
    /// Unsupported snapshot version.
    BadVersion(u16),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot buffer truncated"),
            SnapshotError::BadMagic => write!(f, "not a scenario snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Little-endian cursor over a byte slice; every read is
/// bounds-checked into [`SnapshotError::Truncated`].
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N], SnapshotError> {
        let end = self.pos.checked_add(N).ok_or(SnapshotError::Truncated)?;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or(SnapshotError::Truncated)?;
        self.pos = end;
        Ok(bytes.try_into().expect("slice has length N"))
    }

    fn u16_le(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take()?))
    }

    fn u32_le(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take()?))
    }

    fn f64_le(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_le_bytes(self.take()?))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

fn put_u16_le(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32_le(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64_le(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Serialises a scenario to bytes.
pub fn encode(scenario: &Scenario) -> Vec<u8> {
    let mut buf = Vec::with_capacity(
        64 + scenario.subscribers.len() * 24 + scenario.base_stations.len() * 16,
    );
    put_u32_le(&mut buf, MAGIC);
    put_u16_le(&mut buf, VERSION);
    // Field (stored as min/max corners).
    put_f64_le(&mut buf, scenario.field.min().x);
    put_f64_le(&mut buf, scenario.field.min().y);
    put_f64_le(&mut buf, scenario.field.max().x);
    put_f64_le(&mut buf, scenario.field.max().y);
    // Link parameters.
    let link = &scenario.params.link;
    put_f64_le(&mut buf, link.model().gain());
    put_f64_le(&mut buf, link.model().alpha());
    put_f64_le(&mut buf, link.pmax());
    put_f64_le(&mut buf, link.beta());
    put_f64_le(&mut buf, link.noise());
    put_f64_le(&mut buf, link.bandwidth());
    put_f64_le(&mut buf, scenario.params.nmax);
    // Stations.
    put_u32_le(&mut buf, scenario.subscribers.len() as u32);
    for s in &scenario.subscribers {
        put_f64_le(&mut buf, s.position.x);
        put_f64_le(&mut buf, s.position.y);
        put_f64_le(&mut buf, s.distance_req);
    }
    put_u32_le(&mut buf, scenario.base_stations.len() as u32);
    for b in &scenario.base_stations {
        put_f64_le(&mut buf, b.position.x);
        put_f64_le(&mut buf, b.position.y);
    }
    buf
}

/// Deserialises a scenario from bytes.
///
/// # Errors
/// [`SnapshotError`] on malformed input.
pub fn decode(buf: &[u8]) -> Result<Scenario, SnapshotError> {
    let mut r = Reader::new(buf);
    if r.u32_le().map_err(|_| SnapshotError::Truncated)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u16_le()?;
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let min = Point::new(r.f64_le()?, r.f64_le()?);
    let max = Point::new(r.f64_le()?, r.f64_le()?);
    let gain = r.f64_le()?;
    let alpha = r.f64_le()?;
    let pmax = r.f64_le()?;
    let beta = r.f64_le()?;
    let noise = r.f64_le()?;
    let bandwidth = r.f64_le()?;
    let nmax = r.f64_le()?;
    let n_subs = r.u32_le()? as usize;
    if r.remaining() < n_subs.saturating_mul(24) {
        return Err(SnapshotError::Truncated);
    }
    let mut subscribers = Vec::with_capacity(n_subs);
    for _ in 0..n_subs {
        let p = Point::new(r.f64_le()?, r.f64_le()?);
        let d = r.f64_le()?;
        subscribers.push(Subscriber::new(p, d));
    }
    let n_bs = r.u32_le()? as usize;
    if r.remaining() < n_bs.saturating_mul(16) {
        return Err(SnapshotError::Truncated);
    }
    let mut base_stations = Vec::with_capacity(n_bs);
    for _ in 0..n_bs {
        base_stations.push(BaseStation::new(Point::new(r.f64_le()?, r.f64_le()?)));
    }
    let link = LinkBudget::builder()
        .model(TwoRay::new(gain, alpha))
        .max_power(pmax)
        .snr_threshold(Db::from_linear(beta))
        .noise(noise)
        .bandwidth(bandwidth)
        .build();
    Scenario::new(
        Rect::from_corners(min, max),
        subscribers,
        base_stations,
        NetworkParams::new(link, nmax),
    )
    .map_err(|_| SnapshotError::Truncated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ScenarioSpec;

    #[test]
    fn roundtrip() {
        let sc = ScenarioSpec::default().build(5);
        let bytes = encode(&sc);
        let back = decode(&bytes).unwrap();
        assert_eq!(sc, back);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut b = Vec::new();
        put_u32_le(&mut b, 0xDEAD_BEEF);
        put_u16_le(&mut b, 1);
        assert_eq!(decode(&b), Err(SnapshotError::BadMagic));
    }

    #[test]
    fn truncated_rejected() {
        let sc = ScenarioSpec::default().build(5);
        let bytes = encode(&sc);
        assert_eq!(
            decode(&bytes[..bytes.len() - 3]),
            Err(SnapshotError::Truncated)
        );
    }

    #[test]
    fn every_prefix_rejected_cleanly() {
        // No prefix may panic or decode successfully; each must report a
        // structured error (Truncated once the magic/version fit).
        let sc = ScenarioSpec::default().build(5);
        let bytes = encode(&sc);
        for cut in 0..bytes.len() - 1 {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn version_checked() {
        let mut b = Vec::new();
        put_u32_le(&mut b, MAGIC);
        put_u16_le(&mut b, 99);
        assert_eq!(decode(&b), Err(SnapshotError::BadVersion(99)));
    }

    #[test]
    fn declared_length_overflow_rejected() {
        // A subscriber count far beyond the buffer must fail fast, not
        // allocate or overflow.
        let mut b = Vec::new();
        put_u32_le(&mut b, MAGIC);
        put_u16_le(&mut b, VERSION);
        for _ in 0..11 {
            put_f64_le(&mut b, 0.0);
        }
        put_u32_le(&mut b, u32::MAX);
        assert_eq!(decode(&b), Err(SnapshotError::Truncated));
    }

    #[test]
    fn roundtrip_preserves_link_budget() {
        let spec = ScenarioSpec {
            snr_db: -25.0,
            pmax: 2.0,
            ..Default::default()
        };
        let sc = spec.build(9);
        let back = decode(&encode(&sc)).unwrap();
        assert!((back.params.link.beta() - sc.params.link.beta()).abs() < 1e-15);
        assert_eq!(back.params.link.pmax(), 2.0);
    }
}
