//! Compact binary scenario snapshots.
//!
//! A fixed little-endian layout over [`bytes`]: magic, version, field
//! size, link parameters, then subscriber and base-station tables. Used
//! by the topology-export example to persist the exact scenario a plot
//! came from, and handy for shipping failing cases into tests.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use sag_core::model::{BaseStation, NetworkParams, Scenario, Subscriber};
use sag_geom::{Point, Rect};
use sag_radio::{units::Db, LinkBudget, TwoRay};

const MAGIC: u32 = 0x5341_4731; // "SAG1"
const VERSION: u16 = 1;

/// Errors from [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Buffer too short for the declared structure.
    Truncated,
    /// Magic number mismatch — not a snapshot.
    BadMagic,
    /// Unsupported snapshot version.
    BadVersion(u16),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot buffer truncated"),
            SnapshotError::BadMagic => write!(f, "not a scenario snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Serialises a scenario to bytes.
pub fn encode(scenario: &Scenario) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        64 + scenario.subscribers.len() * 24 + scenario.base_stations.len() * 16,
    );
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    // Field (stored as min/max corners).
    buf.put_f64_le(scenario.field.min().x);
    buf.put_f64_le(scenario.field.min().y);
    buf.put_f64_le(scenario.field.max().x);
    buf.put_f64_le(scenario.field.max().y);
    // Link parameters.
    let link = &scenario.params.link;
    buf.put_f64_le(link.model().gain());
    buf.put_f64_le(link.model().alpha());
    buf.put_f64_le(link.pmax());
    buf.put_f64_le(link.beta());
    buf.put_f64_le(link.noise());
    buf.put_f64_le(link.bandwidth());
    buf.put_f64_le(scenario.params.nmax);
    // Stations.
    buf.put_u32_le(scenario.subscribers.len() as u32);
    for s in &scenario.subscribers {
        buf.put_f64_le(s.position.x);
        buf.put_f64_le(s.position.y);
        buf.put_f64_le(s.distance_req);
    }
    buf.put_u32_le(scenario.base_stations.len() as u32);
    for b in &scenario.base_stations {
        buf.put_f64_le(b.position.x);
        buf.put_f64_le(b.position.y);
    }
    buf.freeze()
}

/// Deserialises a scenario from bytes.
///
/// # Errors
/// [`SnapshotError`] on malformed input.
pub fn decode(mut buf: impl Buf) -> Result<Scenario, SnapshotError> {
    let need = |buf: &dyn Buf, n: usize| -> Result<(), SnapshotError> {
        if buf.remaining() < n {
            Err(SnapshotError::Truncated)
        } else {
            Ok(())
        }
    };
    need(&buf, 6)?;
    if buf.get_u32_le() != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    need(&buf, 8 * 11 + 4)?;
    let min = Point::new(buf.get_f64_le(), buf.get_f64_le());
    let max = Point::new(buf.get_f64_le(), buf.get_f64_le());
    let gain = buf.get_f64_le();
    let alpha = buf.get_f64_le();
    let pmax = buf.get_f64_le();
    let beta = buf.get_f64_le();
    let noise = buf.get_f64_le();
    let bandwidth = buf.get_f64_le();
    let nmax = buf.get_f64_le();
    let n_subs = buf.get_u32_le() as usize;
    need(&buf, n_subs * 24 + 4)?;
    let mut subscribers = Vec::with_capacity(n_subs);
    for _ in 0..n_subs {
        let p = Point::new(buf.get_f64_le(), buf.get_f64_le());
        let d = buf.get_f64_le();
        subscribers.push(Subscriber::new(p, d));
    }
    let n_bs = buf.get_u32_le() as usize;
    need(&buf, n_bs * 16)?;
    let mut base_stations = Vec::with_capacity(n_bs);
    for _ in 0..n_bs {
        base_stations.push(BaseStation::new(Point::new(buf.get_f64_le(), buf.get_f64_le())));
    }
    let link = LinkBudget::builder()
        .model(TwoRay::new(gain, alpha))
        .max_power(pmax)
        .snr_threshold(Db::from_linear(beta))
        .noise(noise)
        .bandwidth(bandwidth)
        .build();
    Scenario::new(
        Rect::from_corners(min, max),
        subscribers,
        base_stations,
        NetworkParams::new(link, nmax),
    )
    .map_err(|_| SnapshotError::Truncated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ScenarioSpec;

    #[test]
    fn roundtrip() {
        let sc = ScenarioSpec::default().build(5);
        let bytes = encode(&sc);
        let back = decode(bytes).unwrap();
        assert_eq!(sc, back);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut b = BytesMut::new();
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u16_le(1);
        assert_eq!(decode(b.freeze()), Err(SnapshotError::BadMagic));
    }

    #[test]
    fn truncated_rejected() {
        let sc = ScenarioSpec::default().build(5);
        let bytes = encode(&sc);
        let cut = bytes.slice(0..bytes.len() - 3);
        assert_eq!(decode(cut), Err(SnapshotError::Truncated));
    }

    #[test]
    fn version_checked() {
        let mut b = BytesMut::new();
        b.put_u32_le(MAGIC);
        b.put_u16_le(99);
        assert_eq!(decode(b.freeze()), Err(SnapshotError::BadVersion(99)));
    }

    #[test]
    fn roundtrip_preserves_link_budget() {
        let spec = ScenarioSpec { snr_db: -25.0, pmax: 2.0, ..Default::default() };
        let sc = spec.build(9);
        let back = decode(encode(&sc)).unwrap();
        assert!((back.params.link.beta() - sc.params.link.beta()).abs() < 1e-15);
        assert_eq!(back.params.link.pmax(), 2.0);
    }
}
