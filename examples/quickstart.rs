//! Quickstart: place relays for a handful of subscribers and print the
//! resulting two-tier deployment.
//!
//! ```text
//! cargo run -p sag-sim --example quickstart
//! ```

use sag_core::model::{BaseStation, NetworkParams, Scenario, Subscriber};
use sag_core::sag::run_sag;
use sag_core::RelayRole;
use sag_geom::{Point, Rect};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Five fixed high-traffic subscribers in a 500×500 field; one macro
    // base station at the north-east corner. Feasible distances encode
    // each subscriber's data-rate request (paper §II).
    let scenario = Scenario::new(
        Rect::centered_square(500.0),
        vec![
            Subscriber::new(Point::new(-180.0, -60.0), 35.0),
            Subscriber::new(Point::new(-150.0, -40.0), 32.0),
            Subscriber::new(Point::new(-20.0, 10.0), 38.0),
            Subscriber::new(Point::new(140.0, -120.0), 30.0),
            Subscriber::new(Point::new(60.0, 180.0), 34.0),
        ],
        vec![BaseStation::new(Point::new(230.0, 230.0))],
        NetworkParams::default(),
    )?;

    let report = run_sag(&scenario)?;
    let power = report.power_summary();

    println!("SNR-aware green relay deployment");
    println!("--------------------------------");
    println!("subscribers:          {}", scenario.n_subscribers());
    println!("coverage relays:      {}", report.n_coverage_relays());
    println!("connectivity relays:  {}", report.n_connectivity_relays());
    println!("lower-tier power P_L: {:.4}", power.lower);
    println!("upper-tier power P_H: {:.4}", power.upper);
    println!("total power:          {:.4}", power.total);
    println!();
    println!("placed relays:");
    for relay in report.relays() {
        let role = match relay.role {
            RelayRole::Coverage => "cover  ",
            RelayRole::Connectivity => "connect",
        };
        println!("  [{role}] {}  power {:.5}", relay.position, relay.power);
    }
    println!();
    println!("per-subscriber assignment (SS -> coverage relay):");
    for (j, &r) in report.coverage.assignment.iter().enumerate() {
        let d = report.coverage.relays[r].distance(scenario.subscribers[j].position);
        println!(
            "  SS{j} at {} -> relay {r} (distance {:.1} ≤ {:.1})",
            scenario.subscribers[j].position, d, scenario.subscribers[j].distance_req
        );
    }
    Ok(())
}
