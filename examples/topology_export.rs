//! Topology export: regenerate the paper's Fig. 6 panels as CSV files
//! plus a binary scenario snapshot, ready for any plotting tool.
//!
//! ```text
//! cargo run -p sag-sim --example topology_export -- [out_dir]
//! ```
//!
//! Writes `fig6_<panel>.csv` (kind,x,y,x2,y2 rows) and
//! `fig6_scenario.bin` (the exact scenario, reloadable via
//! `sag_sim::snapshot::decode`) into `out_dir` (default `target/fig6`).

use std::io::Write as _;

use sag_geom::hull::{convex_hull, polygon_area};
use sag_sim::experiments::fig6;
use sag_sim::snapshot;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/fig6".to_string());
    std::fs::create_dir_all(&out_dir)?;

    let seed = 7;
    let scenario = fig6::fig6_scenario(seed);
    let snap = snapshot::encode(&scenario);
    let snap_path = format!("{out_dir}/fig6_scenario.bin");
    std::fs::File::create(&snap_path)?.write_all(&snap)?;
    println!("wrote {snap_path} ({} bytes)", snap.len());

    for dump in fig6::fig6(seed) {
        let path = format!("{out_dir}/fig6_{}.csv", dump.name.replace('+', "_"));
        std::fs::write(&path, dump.to_csv())?;
        // A quick footprint statistic: how much of the field the relay
        // tier spans (convex hull over all relays).
        let mut pts = dump.coverage_relays.clone();
        pts.extend(dump.connectivity_relays.iter().copied());
        let hull = convex_hull(&pts);
        println!(
            "{:<10} {:>2} cover + {:>3} connect relays, {:>3} links, relay hull {:>9.0} area -> {path}",
            dump.name,
            dump.coverage_relays.len(),
            dump.connectivity_relays.len(),
            dump.links.len(),
            polygon_area(&hull),
        );
    }

    // Prove the snapshot round-trips.
    let reloaded = snapshot::decode(&snap)?;
    assert_eq!(reloaded, scenario);
    println!("snapshot round-trip verified");
    Ok(())
}
