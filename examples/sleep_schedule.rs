//! Sleep scheduling over a day of demand: the `core::sleep` extension in
//! action.
//!
//! Retail subscribers are busy during opening hours and idle at night;
//! the fixed relay placement serves each hour with the smallest awake
//! subset that still meets distance and SNR, and the example reports the
//! energy saved versus keeping every relay powered (PRO level) all day.
//!
//! ```text
//! cargo run -p sag-sim --release --example sleep_schedule
//! ```

use sag_core::pro::pro;
use sag_core::samc::samc;
use sag_core::sleep::energy_over_horizon;
use sag_sim::gen::ScenarioSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sc = ScenarioSpec {
        field_size: 500.0,
        n_subscribers: 18,
        n_base_stations: 2,
        snr_db: -15.0,
        ..Default::default()
    }
    .build(11);

    let placement = samc(&sc)?;
    let always_on = pro(&sc, &placement).total();

    // A stylised day: hour → indices of active subscribers. Anchors
    // (every third subscriber) open early and close late; the rest keep
    // core hours; nothing is active overnight.
    let n = sc.n_subscribers();
    let slots: Vec<Vec<usize>> = (0..24)
        .map(|hour| match hour {
            0..=5 | 23 => Vec::new(),
            6..=8 | 20..=22 => (0..n).filter(|j| j % 3 == 0).collect(),
            _ => (0..n).collect(),
        })
        .collect();

    let (plans, energy) = energy_over_horizon(&sc, &placement, &slots)?;

    println!("sleep schedule over a 24-hour demand profile");
    println!("--------------------------------------------");
    println!(
        "placement: {} relays ({} subscribers)",
        placement.n_relays(),
        n
    );
    println!("hour  active  awake  slot power");
    for (hour, (slot, plan)) in slots.iter().zip(&plans).enumerate() {
        println!(
            "{hour:4}  {:6}  {:5}  {:10.4}",
            slot.len(),
            plan.awake.len(),
            plan.power
        );
    }
    let always_on_energy = always_on * 24.0;
    println!();
    println!("energy, relays always at PRO level: {always_on_energy:8.3}");
    println!("energy, with sleep scheduling:      {energy:8.3}");
    println!(
        "saving: {:.1}% on top of PRO's own reduction",
        100.0 * (1.0 - energy / always_on_energy)
    );
    assert!(energy <= always_on_energy + 1e-9);
    Ok(())
}
