//! Green audit: quantify where the pipeline's power savings come from.
//!
//! For a batch of random scenarios this prints, stage by stage, the
//! lower-tier power at max transmit (baseline), after PRO, and at the
//! true optimum (minimal fixed point of the power-control map), plus the
//! upper tier before and after UCPO — the data behind the paper's
//! Fig. 4(a)/(d).
//!
//! ```text
//! cargo run -p sag-sim --example green_audit
//! ```

use sag_core::mbmc::mbmc;
use sag_core::pro::{baseline_power, optimal_power, power_sensitivity, pro};
use sag_core::samc::samc;
use sag_core::ucpo::{baseline_upper_power, ucpo};
use sag_sim::gen::ScenarioSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ScenarioSpec {
        field_size: 500.0,
        n_subscribers: 25,
        n_base_stations: 4,
        snr_db: -15.0,
        ..Default::default()
    };

    println!("seed |  relays |  P_L max   P_L PRO   P_L opt |  P_H max   P_H UCPO |  saved");
    println!("-----+---------+-------------------------------+---------------------+-------");
    for seed in 0..8u64 {
        let sc = spec.build(seed);
        let Ok(cov) = samc(&sc) else {
            println!("{seed:4} | infeasible at this SNR threshold");
            continue;
        };
        let lower_base = baseline_power(&sc, &cov).total();
        let lower_pro = pro(&sc, &cov).total();
        let lower_opt = optimal_power(&sc, &cov)?.total();
        let plan = mbmc(&sc, &cov)?;
        let upper_base = baseline_upper_power(&sc, &plan).total();
        let upper_opt = ucpo(&sc, &cov, &plan).total();
        let before = lower_base + upper_base;
        let after = lower_pro + upper_opt;
        println!(
            "{seed:4} | {:3}+{:3} | {lower_base:8.3} {lower_pro:9.3} {lower_opt:9.3} | {upper_base:8.3} {upper_opt:10.3} | {:5.1}%",
            cov.n_relays(),
            plan.n_relays(),
            100.0 * (1.0 - after / before),
        );
    }
    println!();
    println!("P_L opt is the LPQC optimum for the fixed assignment; PRO matching it");
    println!("closely is the Theorem 1 (1+φ) bound in action.");

    // Shadow prices: which subscriber pins the power budget?
    let sc = spec.build(0);
    if let Ok(cov) = samc(&sc) {
        if let Ok(sens) = power_sensitivity(&sc, &cov) {
            if let Some((j, &v)) = sens
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            {
                println!();
                println!(
                    "most power-expensive subscriber on seed 0: SS{j} at {} \
                     (dP/dP_ss = {v:.1}; renegotiate or re-home this one first)",
                    sc.subscribers[j].position
                );
            }
        }
    }
    Ok(())
}
