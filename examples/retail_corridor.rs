//! Retail corridor: the paper's motivating workload — static,
//! high-demand subscribers (big-box stores, fast food, gas stations)
//! strung along a highway, offloaded from two macro cells through a
//! green relay tier.
//!
//! Compares the full SAG pipeline against the DARP-style all-max-power
//! deployment on the same topology and prints the energy saving.
//!
//! ```text
//! cargo run -p sag-sim --example retail_corridor
//! ```

use sag_core::darp::darp;
use sag_core::model::{BaseStation, NetworkParams, Scenario, Subscriber};
use sag_core::sag::run_sag;
use sag_core::samc::samc;
use sag_geom::{Point, Rect};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A west–east commercial strip: stores every ~70 m with a service
    // road cluster in the middle, plus two gas stations off-corridor.
    // Larger stores request more capacity → shorter feasible distance.
    let mut subscribers = Vec::new();
    for k in 0..8 {
        let x = -280.0 + k as f64 * 70.0;
        let d = if k % 3 == 0 { 30.0 } else { 36.0 }; // anchors demand more
        subscribers.push(Subscriber::new(Point::new(x, 20.0), d));
    }
    subscribers.push(Subscriber::new(Point::new(-40.0, -60.0), 33.0)); // food court
    subscribers.push(Subscriber::new(Point::new(10.0, -80.0), 33.0)); // cinema
    subscribers.push(Subscriber::new(Point::new(-200.0, 140.0), 40.0)); // gas north
    subscribers.push(Subscriber::new(Point::new(180.0, -170.0), 40.0)); // gas south

    let scenario = Scenario::new(
        Rect::centered_square(700.0),
        subscribers,
        vec![
            BaseStation::new(Point::new(-300.0, 250.0)),
            BaseStation::new(Point::new(300.0, -250.0)),
        ],
        NetworkParams::default(),
    )?;

    let report = run_sag(&scenario)?;
    let sag_power = report.power_summary();

    // DARP-style baseline on the SAME lower-tier topology: every relay at
    // Pmax and all traffic forced to a single macro cell.
    let coverage = samc(&scenario)?;
    let baseline = darp(&scenario, &coverage, 0)?;

    println!(
        "retail corridor deployment ({} subscribers)",
        scenario.n_subscribers()
    );
    println!("--------------------------------------------");
    println!(
        "SAG   : {:>2} coverage + {:>2} connectivity relays, total power {:.3}",
        report.n_coverage_relays(),
        report.n_connectivity_relays(),
        sag_power.total
    );
    println!(
        "DARP  : {:>2} coverage + {:>2} connectivity relays, total power {:.3}",
        coverage.n_relays(),
        baseline.plan.n_relays(),
        baseline.total_power()
    );
    let saving = 100.0 * (1.0 - sag_power.total / baseline.total_power());
    println!("green saving: {saving:.1}% of the all-max-power deployment");
    println!();
    println!("relay chains toward the macro cells:");
    for chain in &report.plan.chains {
        println!(
            "  coverage relay {} -> {} ({} hop(s) of {:.1})",
            chain.child_pos, chain.parent_pos, chain.hops, chain.hop_length
        );
    }
    Ok(())
}
