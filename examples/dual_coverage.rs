//! Dual coverage: the 802.16j MMR-style resilient lower tier, where
//! every subscriber keeps a backup relay (the `kcover` extension).
//!
//! Compares single- vs dual-coverage relay counts and shows that losing
//! any one relay leaves every subscriber covered, plus the lifetime
//! implications of running the greener primary assignment.
//!
//! ```text
//! cargo run -p sag-sim --release --example dual_coverage
//! ```

use sag_core::kcover::{is_k_feasible, solve_k_coverage, KCoverStrategy};
use sag_core::lifetime::{lifetime, BatteryBank};
use sag_core::pro::{baseline_power, pro};
use sag_core::samc::samc;
use sag_core::CoverageSolution;
use sag_sim::gen::ScenarioSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ScenarioSpec {
        field_size: 500.0,
        n_subscribers: 15,
        n_base_stations: 2,
        snr_db: -15.0,
        ..Default::default()
    };
    let sc = spec.build(4);

    let single = samc(&sc)?;
    let dual = solve_k_coverage(&sc, 2, KCoverStrategy::Greedy)?;
    assert!(is_k_feasible(&sc, &dual));

    println!(
        "coverage multiplicity comparison ({} subscribers)",
        sc.n_subscribers()
    );
    println!("  single coverage (SAMC): {:>2} relays", single.n_relays());
    println!("  dual coverage (k = 2) : {:>2} relays", dual.n_relays());

    // Resilience check: knock out each relay in turn; every subscriber
    // must still have a server in range.
    let mut worst_orphans = 0;
    for dead in 0..dual.n_relays() {
        let orphans = sc
            .subscribers
            .iter()
            .enumerate()
            .filter(|(j, sub)| {
                !dual.servers[*j].iter().any(|&r| {
                    // Backup candidates often sit exactly on the feasible
                    // circle; compare with the library's tolerance.
                    r != dead && dual.relays[r].distance(sub.position) <= sub.distance_req + 1e-9
                })
            })
            .count();
        worst_orphans = worst_orphans.max(orphans);
    }
    println!("  worst-case orphans after any single relay failure: {worst_orphans}");
    assert_eq!(
        worst_orphans, 0,
        "dual coverage must survive any single failure"
    );

    // Green primary operation: run PRO on the primary assignment and
    // compare the battery lifetime against all-Pmax operation.
    let primary = CoverageSolution {
        relays: dual.relays.clone(),
        assignment: dual.primary_assignment(),
    };
    let bank = BatteryBank::uniform(primary.n_relays(), 1000.0);
    let base_life = lifetime(&baseline_power(&sc, &primary), &bank);
    let green_life = lifetime(&pro(&sc, &primary), &bank);
    println!(
        "  lifetime at Pmax: {:.0} units; after PRO: {:.0} units ({}x)",
        base_life.first_failure,
        green_life.first_failure,
        if green_life.first_failure.is_finite() {
            format!("{:.1}", green_life.first_failure / base_life.first_failure)
        } else {
            "inf".to_string()
        },
    );
    if let Some(b) = green_life.bottleneck {
        println!(
            "  bottleneck relay after PRO: {} at {}",
            b, primary.relays[b]
        );
    }
    Ok(())
}
