//! Observability integration suite: span-tree shape, metrics/report
//! parity and the obs-sink chaos contract.
//!
//! Three contracts from the `sag-obs` tentpole are pinned here:
//!
//! 1. **Well-formed span trees** — every pipeline run emits balanced
//!    enter/exit events that nest properly, and the set of stage spans
//!    equals the set of stages that actually executed (including the
//!    `greedy_fallback` rung when a zero budget forces degradation).
//! 2. **Metrics/report parity** — the `StageMetrics` carried by a
//!    [`SagReport`] agree with the report's own artefacts (relay
//!    counts, hop counts, PRO baselines), so dashboards built on the
//!    metrics stream can be trusted against the golden pipeline.
//! 3. **`Fault::ObsSinkFail`** — a sink whose every write fails must
//!    never alter results or panic; events are dropped and counted.

use std::io;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use sag_testkit::prelude::*;

use sag_core::model::Scenario;
use sag_core::sag::{
    run_sag, run_sag_with, AnsweringSolver, LowerSolver, SagPipelineConfig, SagReport,
};
use sag_core::{SolverBackend, SolverBuilder};
use sag_lp::Budget;
use sag_obs::{JsonlSink, Recorder};
use sag_sim::gen::{BsLayout, ScenarioSpec};
use std::sync::Arc;

fn build(users: usize, bss: usize, seed: u64) -> Scenario {
    ScenarioSpec {
        field_size: 500.0,
        n_subscribers: users,
        n_base_stations: bss,
        snr_db: -15.0,
        bs_layout: BsLayout::Uniform,
        ..Default::default()
    }
    .build(seed)
}

/// Raw span event, as delivered to a [`Recorder`].
#[derive(Debug, Clone, PartialEq)]
enum Ev {
    Enter(&'static str, usize),
    Exit(&'static str, usize, Duration),
}

/// Recorder that logs the raw span event stream for shape checks.
#[derive(Default)]
struct SpanLog(Mutex<Vec<Ev>>);

impl Recorder for SpanLog {
    fn span_enter(&self, span: &sag_obs::SpanMeta) {
        self.0
            .lock()
            .expect("log lock")
            .push(Ev::Enter(span.name, span.depth));
    }
    fn span_exit(&self, span: &sag_obs::SpanMeta, dur: Duration) {
        self.0
            .lock()
            .expect("log lock")
            .push(Ev::Exit(span.name, span.depth, dur));
    }
}

/// Runs one pipeline under a fresh [`SpanLog`] and returns the report
/// with the captured event stream.
fn run_logged(sc: &Scenario, config: SagPipelineConfig) -> (Result<SagReport, String>, Vec<Ev>) {
    let log = Arc::new(SpanLog::default());
    let result =
        sag_obs::with_local(log.clone(), || run_sag_with(sc, config)).map_err(|e| e.to_string());
    let events = log.0.lock().expect("log lock").clone();
    (result, events)
}

/// Replays the event stream against a stack and panics on any
/// malformation; returns the distinct span names in first-seen order.
fn assert_well_formed(events: &[Ev]) -> Vec<&'static str> {
    let mut stack: Vec<&'static str> = Vec::new();
    let mut names: Vec<&'static str> = Vec::new();
    for ev in events {
        match *ev {
            Ev::Enter(name, depth) => {
                assert_eq!(
                    depth,
                    stack.len() + 1,
                    "span '{name}' entered at depth {depth} with {} open",
                    stack.len()
                );
                stack.push(name);
                if !names.contains(&name) {
                    names.push(name);
                }
            }
            Ev::Exit(name, depth, _) => {
                assert_eq!(
                    stack.last().copied(),
                    Some(name),
                    "span '{name}' exited out of nesting order (open: {stack:?})"
                );
                assert_eq!(depth, stack.len(), "span '{name}' exit depth mismatch");
                stack.pop();
            }
        }
    }
    assert!(stack.is_empty(), "unclosed spans at end of run: {stack:?}");
    names
}

prop! {
    /// Every successful pipeline run, over random feasible topologies,
    /// produces a balanced, properly nested span stream whose stage
    /// set matches the `StageMetrics` summary (same names, one
    /// `SpanStat` count per exit event).
    #[cases(24)]
    fn span_trees_are_well_formed(users in 2usize..14, bss in 1usize..4, seed in 0u64..10_000) {
        let sc = build(users, bss, seed);
        let started = Instant::now();
        let (result, events) = run_logged(&sc, SagPipelineConfig::default());
        let elapsed = started.elapsed();
        let Ok(report) = result else {
            // Infeasible random topology: a typed error and no events
            // left dangling is exactly the contract.
            return;
        };
        let names = assert_well_formed(&events);
        prop_assert!(!names.is_empty(), "a successful run must emit spans");
        // Top-level stages run sequentially, so their total time is
        // bounded by the run's wall time.
        let top_total: Duration = events.iter().filter_map(|e| match *e {
            Ev::Exit(_, 1, dur) => Some(dur),
            _ => None,
        }).sum();
        prop_assert!(top_total <= elapsed, "stage spans exceed the run's wall time");
        // The report's metrics describe the same tree.
        for &name in &names {
            let stat = report.metrics.span(name);
            prop_assert!(stat.is_some(), "metrics lost span '{name}'");
            let exits = events.iter().filter(|e| matches!(e, Ev::Exit(n, _, _) if *n == name)).count();
            prop_assert!(stat.map(|s| s.count) == Some(exits as u64),
                "span '{name}' count diverges from the event stream");
        }
        let metric_names: Vec<&str> = report.metrics.spans.iter().map(|s| s.name).collect();
        for name in metric_names {
            prop_assert!(names.contains(&name), "metrics invented span '{name}'");
        }
    }
}

#[test]
fn samc_run_emits_the_samc_stage_set() {
    let sc = build(8, 2, 11);
    let (result, events) = run_logged(&sc, SagPipelineConfig::default());
    let report = result.expect("golden scenario is feasible");
    assert_eq!(report.solver, AnsweringSolver::Samc);
    let names = assert_well_formed(&events);
    for stage in ["samc", "zone_partition", "pro", "mbmc", "ucpo"] {
        assert!(
            names.contains(&stage),
            "missing '{stage}' span in {names:?}"
        );
    }
    for absent in ["ilpqc", "greedy_fallback"] {
        assert!(
            !names.contains(&absent),
            "'{absent}' span must not appear on the SAMC path"
        );
    }
}

#[test]
fn greedy_fallback_run_records_its_rungs() {
    // A zero node budget forces ILPQC to exhaust immediately and the
    // pipeline to degrade; the span set must record both rungs.
    let sc = build(6, 2, 13);
    let config = SagPipelineConfig {
        lower_solver: LowerSolver::IlpqcWithGreedyFallback,
        // Pinned: the span-set assertions below are about the exact →
        // greedy ladder, whatever `SAG_SOLVER` says in CI.
        solver: SolverBuilder::fixed(SolverBackend::ExactIlp),
        budget: Budget::unlimited().with_node_limit(0),
        ..Default::default()
    };
    let (result, events) = run_logged(&sc, config);
    let report = result.expect("fallback keeps the scenario solvable");
    assert_eq!(report.solver, AnsweringSolver::GreedyFallback);
    let names = assert_well_formed(&events);
    for stage in ["ilpqc", "greedy_fallback", "pro", "mbmc", "ucpo"] {
        assert!(
            names.contains(&stage),
            "missing '{stage}' span in {names:?}"
        );
    }
    assert!(
        !names.contains(&"samc"),
        "'samc' span must not appear on the ILPQC path"
    );
}

#[test]
fn stage_metrics_agree_with_the_report() {
    // Parity with the golden pipeline: the gauges in the metrics
    // stream must equal the values derivable from the report itself.
    let sc = build(20, 4, 13);
    let report = run_sag(&sc).expect("golden scenario is feasible");
    let m = &report.metrics;
    assert_eq!(
        m.gauge("coverage.relays"),
        Some(report.n_coverage_relays() as f64)
    );
    assert_eq!(
        m.gauge("coverage.one_on_one"),
        Some(report.coverage.served_index().one_on_one() as f64)
    );
    assert_eq!(
        m.gauge("connectivity.relays"),
        Some(report.n_connectivity_relays() as f64)
    );
    assert_eq!(
        m.gauge("connectivity.hops"),
        Some(report.plan.chains.iter().map(|c| c.hops).sum::<usize>() as f64)
    );
    assert_eq!(
        m.gauge("pro.baseline_total"),
        Some(report.n_coverage_relays() as f64 * sc.params.link.pmax())
    );
    let floor = m.gauge("pro.floor_total").expect("PRO records its floor");
    assert!(floor <= report.lower_power.total() + 1e-12);
    // Zone sizes partition the subscribers.
    let zones = m.histogram("zone.size").expect("SAMC observes zone sizes");
    assert_eq!(zones.samples.iter().sum::<u64>(), sc.n_subscribers() as u64);
}

#[test]
fn ilpqc_run_records_solver_work_counters() {
    // PRO's default power solver is a fixed-point iteration, so the
    // LP/B&B work counters belong to the exact lower-tier path.
    let sc = build(8, 2, 11);
    let config = SagPipelineConfig {
        lower_solver: LowerSolver::IlpqcWithGreedyFallback,
        // Pinned: the work counters below belong to the exact backend.
        solver: SolverBuilder::fixed(SolverBackend::ExactIlp),
        ..Default::default()
    };
    let report = run_sag_with(&sc, config).expect("scenario is feasible");
    assert_eq!(report.solver, AnsweringSolver::Ilpqc);
    let m = &report.metrics;
    // Either numerical core may answer (sparse by default, dense under
    // `SAG_LP_ORACLE=1`); each records its own counter family.
    assert!(
        m.counter("lp.solves") + m.counter("lp.sparse_solves") > 0,
        "B&B must record its LP solves"
    );
    assert!(
        m.counter("lp.pivots_phase1")
            + m.counter("lp.pivots_phase2")
            + m.counter("lp.sparse_pivots")
            > 0,
        "simplex must record pivots"
    );
    assert!(m.counter("ilpqc.nodes") > 0, "ILPQC must count its nodes");
}

#[test]
fn budget_spent_is_stage_local_on_every_arm() {
    // S2 regression: `SagReport::budget_spent` must describe the
    // lower-tier *stage* — its own wall time and node count — not
    // pipeline-so-far, and must mean the same thing on the SAMC and
    // ILPQC arms.
    let sc = build(14, 2, 11);

    let started = Instant::now();
    let samc = run_sag(&sc).expect("scenario is feasible");
    let samc_wall = started.elapsed();
    assert_eq!(samc.budget_spent.nodes, 0, "SAMC does no B&B work");
    let samc_span = samc.metrics.span("samc").expect("samc span").total;
    assert!(
        samc.budget_spent.elapsed >= samc_span,
        "stage spend {:?} cannot undercut the samc span {samc_span:?}",
        samc.budget_spent.elapsed
    );
    assert!(
        samc.budget_spent.elapsed <= samc_wall,
        "stage spend {:?} exceeds the whole run ({samc_wall:?})",
        samc.budget_spent.elapsed
    );

    let started = Instant::now();
    let ilpqc = run_sag_with(
        &sc,
        SagPipelineConfig {
            lower_solver: LowerSolver::IlpqcWithGreedyFallback,
            // Pinned: `ilpqc.nodes` parity only holds on the exact path.
            solver: SolverBuilder::fixed(SolverBackend::ExactIlp),
            ..Default::default()
        },
    )
    .expect("scenario is feasible");
    let ilpqc_wall = started.elapsed();
    // The reported nodes are exactly the solver's own work counter.
    assert_eq!(
        ilpqc.budget_spent.nodes as u64,
        ilpqc.metrics.counter("ilpqc.nodes")
    );
    let ilpqc_span = ilpqc.metrics.span("ilpqc").expect("ilpqc span").total;
    assert!(ilpqc.budget_spent.elapsed >= ilpqc_span);
    assert!(ilpqc.budget_spent.elapsed <= ilpqc_wall);
}

/// Recorder that logs span identity/linkage, for cross-thread
/// parenting checks where interleaving makes depth replay meaningless.
#[derive(Default)]
struct LinkLog(Mutex<Vec<sag_obs::SpanMeta>>);

impl Recorder for LinkLog {
    fn span_enter(&self, span: &sag_obs::SpanMeta) {
        self.0.lock().expect("log lock").push(*span);
    }
}

#[test]
fn sweep_worker_spans_parent_under_the_coordinator_sweep_span() {
    // Regression for the sweep worker span-context seeding bug: worker
    // threads used to open `sweep_cell` spans with no inherited
    // context, so every cell became its own root and a sweep capture
    // shattered into per-thread fragments. The engine must seed each
    // worker with the coordinator's span context; every cell span —
    // whichever thread runs it, in whatever claim order — parents
    // under the one `sweep` span.
    use sag_sim::batch::{sweep_multi_with, JobOrder, SweepOptions};
    use sag_sim::runner::SweepConfig;

    for threads in [1usize, 4] {
        let log = Arc::new(LinkLog::default());
        let config = SweepConfig {
            runs: 3,
            base_seed: 5,
            threads,
        };
        sag_obs::with_local(log.clone(), || {
            sweep_multi_with(
                &[1.0f64, 2.0, 3.0],
                1,
                config,
                SweepOptions {
                    order: JobOrder::Shuffled(41),
                    ..Default::default()
                },
                |_ctx, x, seed| vec![Some(x + seed as f64)],
            );
        });
        let spans = log.0.lock().expect("log lock").clone();
        let sweeps: Vec<_> = spans.iter().filter(|s| s.name == "sweep").collect();
        assert_eq!(
            sweeps.len(),
            1,
            "threads={threads}: exactly one sweep coordinator span"
        );
        let root = sweeps[0].id;
        let cells: Vec<_> = spans.iter().filter(|s| s.name == "sweep_cell").collect();
        assert_eq!(cells.len(), 9, "threads={threads}: one span per cell");
        for cell in &cells {
            assert_eq!(
                cell.parent,
                Some(root),
                "threads={threads}: cell span {} (zone {:?}) lost its parent link",
                cell.id,
                cell.zone
            );
        }
        // Zone tags cover every cell exactly once.
        let mut zones: Vec<u64> = cells.iter().filter_map(|s| s.zone).collect();
        zones.sort_unstable();
        assert_eq!(zones, (0..9).collect::<Vec<u64>>());
    }
}

/// Writer that fails every operation — the realisation of
/// [`Fault::ObsSinkFail`].
struct FailingWriter;

impl io::Write for FailingWriter {
    fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
        Err(io::Error::other("injected obs sink failure"))
    }
    fn flush(&mut self) -> io::Result<()> {
        Err(io::Error::other("injected obs sink failure"))
    }
}

#[test]
fn obs_sink_failure_never_alters_results() {
    let _catalogued = Fault::ObsSinkFail; // realised below, at the sink
    let sc = build(12, 3, 17);
    let clean = run_sag(&sc).expect("scenario is feasible");

    let sink = JsonlSink::from_writer(Box::new(FailingWriter));
    let guard = sag_obs::install(sink.clone());
    let faulted = run_sag(&sc).expect("a dead sink must not fail the pipeline");
    drop(guard);

    // Every event (header included) was dropped, counted, and nothing
    // about the deployment changed.
    assert!(
        sink.dropped_events() > 0,
        "the failing sink should have dropped events"
    );
    assert_eq!(clean.power_summary(), faulted.power_summary());
    assert_eq!(clean.n_coverage_relays(), faulted.n_coverage_relays());
    assert_eq!(
        clean.n_connectivity_relays(),
        faulted.n_connectivity_relays()
    );
    assert_eq!(clean.solver, faulted.solver);
}
