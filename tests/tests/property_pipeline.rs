//! Property-based integration tests: the pipeline's invariants must hold
//! over *arbitrary* generated scenarios, not just hand-picked ones.

use sag_testkit::prelude::*;

use sag_core::coverage::is_feasible;
use sag_core::kcover::{is_k_feasible, solve_k_coverage, KCoverStrategy};
use sag_core::lifetime::{lifetime, BatteryBank};
use sag_core::pro::{allocation_is_feasible, baseline_power, coverage_powers, optimal_power, pro};
use sag_core::sag::run_sag;
use sag_core::validate::validate_report;
use sag_sim::gen::{BsLayout, ScenarioSpec};
use sag_sim::snapshot;

/// The strategy every property below draws scenarios from: the paper's
/// field sizes and SNR band, both BS layouts, small-but-varied station
/// counts, and an explicit seed coordinate so shrinking can walk toward
/// simpler topologies.
fn arb_spec() -> impl Strategy<Value = (usize, usize, f64, f64, bool, u64)> {
    (
        3usize..15,                    // subscribers
        1usize..5,                     // base stations
        one_of([300.0, 500.0, 800.0]), // field size
        -25.0..-10.0f64,               // the paper's SNR band
        one_of([false, true]),         // corner BS layout?
        0u64..10_000,                  // scenario seed
    )
}

fn build(input: (usize, usize, f64, f64, bool, u64)) -> sag_core::model::Scenario {
    let (users, bss, field, snr, corners, seed) = input;
    ScenarioSpec {
        field_size: field,
        n_subscribers: users,
        n_base_stations: bss,
        snr_db: snr,
        bs_layout: if corners {
            BsLayout::Corners
        } else {
            BsLayout::Uniform
        },
        ..Default::default()
    }
    .build(seed)
}

prop! {
    #[cases(24)]
    fn pipeline_invariants_hold_everywhere(input in arb_spec()) {
        let sc = build(input);
        let Ok(report) = run_sag(&sc) else {
            // Infeasibility is a legitimate outcome; nothing to check.
            return;
        };
        // Structured audit must be clean.
        let audit = validate_report(&sc, &report);
        prop_assert!(audit.is_clean(), "audit failed:\n{audit}");
        // Coverage + powers feasible by the independent checkers too.
        prop_assert!(is_feasible(&sc, &report.coverage));
        prop_assert!(allocation_is_feasible(&sc, &report.coverage, &report.lower_power));
        // Power sandwich.
        let base = baseline_power(&sc, &report.coverage).total();
        let opt = optimal_power(&sc, &report.coverage).expect("feasible at Pmax").total();
        prop_assert!(opt <= report.lower_power.total() + 1e-9);
        prop_assert!(report.lower_power.total() <= base + 1e-9);
        // Coverage power is a hard floor for any feasible allocation.
        let pc_sum: f64 = coverage_powers(&sc, &report.coverage).iter().sum();
        prop_assert!(opt + 1e-9 >= pc_sum);
        // Relay count sanity: one per subscriber at most.
        prop_assert!(report.n_coverage_relays() <= sc.n_subscribers());
    }

    #[cases(24)]
    fn pro_monotone_under_battery_lifetimes(input in arb_spec()) {
        let sc = build(input);
        let Ok(report) = run_sag(&sc) else { return };
        let bank = BatteryBank::uniform(report.n_coverage_relays(), 500.0);
        let green = lifetime(&report.lower_power, &bank);
        let base = lifetime(&baseline_power(&sc, &report.coverage), &bank);
        prop_assert!(green.first_failure >= base.first_failure - 1e-9);
    }

    #[cases(24)]
    fn snapshots_roundtrip_any_scenario(input in arb_spec()) {
        let sc = build(input);
        let bytes = snapshot::encode(&sc);
        let back = snapshot::decode(&bytes).expect("decode");
        prop_assert_eq!(sc, back);
    }

    #[cases(24)]
    fn dual_coverage_uses_at_most_double(input in arb_spec()) {
        let sc = build(input);
        let Ok(k1) = solve_k_coverage(&sc, 1, KCoverStrategy::Greedy) else { return };
        let Ok(k2) = solve_k_coverage(&sc, 2, KCoverStrategy::Greedy) else { return };
        prop_assert!(is_k_feasible(&sc, &k1));
        prop_assert!(is_k_feasible(&sc, &k2));
        prop_assert!(k2.n_relays() >= k1.n_relays());
        // Greedy multicover never needs more than twice the 1-cover plus
        // the per-disk auxiliary ring slack.
        prop_assert!(k2.n_relays() <= 2 * k1.n_relays() + sc.n_subscribers());
    }

    #[cases(24)]
    fn pro_idempotent_and_deterministic(input in arb_spec()) {
        let sc = build(input);
        let Ok(report) = run_sag(&sc) else { return };
        let again = pro(&sc, &report.coverage);
        prop_assert_eq!(&again.powers, &report.lower_power.powers);
    }
}
