//! Failure-forensics acceptance suite for the flight-recorder
//! tentpole.
//!
//! Every typed failure path — [`SagError::WorkerPanic`],
//! [`SagError::LedgerDesync`], [`SagError::BudgetExceeded`], a
//! portfolio loser panic or hang, and a churn repair landing on the
//! `Deferred` rung — must emit a structured post-mortem dump frame
//! that [`sag_obs::json::validate`] accepts, and `repro trace`'s
//! analyzer must reconstruct the run's JSONL into a single span tree
//! with correct parent links at 1, 2 and 4 threads. The validator and
//! analyzer must additionally survive truncated, interleaved and
//! byte-flipped streams (the [`Fault::ObsSinkFail`] family) without
//! panicking.

use std::io::{self, Write};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use sag_testkit::prelude::*;

use sag_core::churn::{ChurnConfig, ChurnEngine, ChurnEvent, RepairRung};
use sag_core::sag::{run_sag_with, LowerSolver, SagPipelineConfig};
use sag_core::{LoserFault, SagError, SolverBackend, SolverBuilder};
use sag_lp::Budget;
use sag_obs::JsonlSink;
use sag_sim::gen::{BsLayout, ScenarioSpec};
use sag_sim::trace::{self, TraceReport};

fn build(users: usize, bss: usize, seed: u64) -> sag_core::model::Scenario {
    ScenarioSpec {
        field_size: 500.0,
        n_subscribers: users,
        n_base_stations: bss,
        snr_db: -15.0,
        bs_layout: BsLayout::Uniform,
        ..Default::default()
    }
    .build(seed)
}

/// Shared in-memory writer so the captured JSONL can be read back
/// after the sink drops its trailer.
#[derive(Clone, Default)]
struct Shared(Arc<Mutex<Vec<u8>>>);

impl Write for Shared {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().expect("buffer lock").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The flight-recorder capacity is process-global; serialize the
/// tests that arm it.
fn ring_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs `f` under a thread-local JSONL sink with the flight recorder
/// armed and returns the captured stream (header through trailer).
fn capture(f: impl FnOnce()) -> String {
    let buf = Shared::default();
    sag_obs::ring::configure(64);
    {
        let sink = JsonlSink::from_writer(Box::new(buf.clone()));
        sag_obs::with_local(sink, f);
    }
    sag_obs::ring::configure(0);
    let bytes = buf.0.lock().expect("buffer lock").clone();
    String::from_utf8(bytes).expect("sink emits utf8")
}

/// Every line of the stream must parse; the stream must contain
/// exactly the given post-mortem classes, in order.
fn assert_frames(stream: &str, classes: &[&str]) -> TraceReport {
    for (i, line) in stream.lines().filter(|l| !l.trim().is_empty()).enumerate() {
        sag_obs::json::validate(line)
            .unwrap_or_else(|e| panic!("line {}: invalid JSON ({e}): {line}", i + 1));
    }
    let report = trace::analyze_str(stream);
    assert_eq!(report.malformed, 0, "sink emitted a malformed line");
    let seen: Vec<&str> = report
        .post_mortems
        .iter()
        .map(|p| p.class.as_str())
        .collect();
    assert_eq!(
        seen, classes,
        "post-mortem frames diverge from the expected classes"
    );
    report
}

/// The analyzer must see one well-formed tree: a single root, no
/// orphaned parent links.
fn assert_single_tree(report: &TraceReport, label: &str) {
    assert_eq!(
        report.roots.len(),
        1,
        "{label}: expected one root span, got {:?}",
        report.roots
    );
    assert!(
        report.orphans.is_empty(),
        "{label}: orphaned parent links: {:?}",
        report.orphans
    );
}

#[test]
fn clean_runs_reconstruct_one_tree_at_any_thread_count() {
    let _guard = ring_lock();
    // Short reach + high N_max fragments the subscribers into many
    // zones, so threads > 1 genuinely spawns zone workers.
    let sc = ScenarioSpec {
        field_size: 800.0,
        n_subscribers: 16,
        n_base_stations: 2,
        snr_db: -15.0,
        dist_range: (8.0, 14.0),
        nmax: 1e-3,
        bs_layout: BsLayout::Uniform,
        ..Default::default()
    }
    .build(1);
    let mut span_names: Vec<Vec<String>> = Vec::new();
    for threads in [1usize, 2, 4] {
        let stream = capture(|| {
            run_sag_with(
                &sc,
                SagPipelineConfig {
                    threads,
                    ..Default::default()
                },
            )
            .expect("scenario is feasible");
        });
        let report = assert_frames(&stream, &[]);
        assert_single_tree(&report, &format!("threads={threads}"));
        assert_eq!(report.unclosed, 0, "threads={threads}: dangling spans");
        assert!(
            report.span_totals.contains_key("run_sag"),
            "threads={threads}: missing root span"
        );
        span_names.push(report.span_totals.keys().cloned().collect());
        if threads > 1 {
            assert!(
                report.threads > 1,
                "threads={threads}: no worker thread emitted spans"
            );
        }
    }
    // The tree's *shape* is thread-count independent: same stage set.
    assert_eq!(span_names[0], span_names[1]);
    assert_eq!(span_names[1], span_names[2]);
}

#[test]
fn sweep_captures_reconstruct_one_tree_at_any_thread_count() {
    let _guard = ring_lock();
    // Regression for the sweep worker span-context seeding bug: the
    // batched engine's workers must inherit the coordinator's span
    // context, or a sweep JSONL capture splinters into one rootless
    // fragment per worker thread.
    use sag_sim::batch::sweep_multi_cached;
    use sag_sim::experiments::{relays_metric, run_samc_cached};
    use sag_sim::runner::SweepConfig;

    let spec = ScenarioSpec {
        field_size: 300.0,
        n_subscribers: 6,
        ..Default::default()
    };
    for threads in [1usize, 2, 4] {
        let config = SweepConfig {
            runs: 2,
            base_seed: 1,
            threads,
        };
        let stream = capture(|| {
            sweep_multi_cached(&[1usize, 2, 3], 1, config, |ctx, _x, seed| {
                vec![relays_metric(&run_samc_cached(ctx, &spec, seed % 1000))]
            });
        });
        let report = assert_frames(&stream, &[]);
        assert_single_tree(&report, &format!("sweep threads={threads}"));
        assert_eq!(report.unclosed, 0, "threads={threads}: dangling spans");
        let cells = report
            .span_totals
            .get("sweep_cell")
            .unwrap_or_else(|| panic!("threads={threads}: no sweep_cell spans"));
        assert_eq!(cells.count, 6, "threads={threads}: one span per cell");
        assert_eq!(
            report.span_totals.get("sweep").map(|a| a.count),
            Some(1),
            "threads={threads}: exactly one sweep root"
        );
        // The coordinator records the cache accounting exactly once.
        assert_eq!(report.counters.get("sweep.cells"), Some(&6));
    }
}

#[test]
fn worker_panic_dumps_exactly_once_at_any_thread_count() {
    let _guard = ring_lock();
    let sc = build(8, 2, 7);
    for threads in [1usize, 2, 4] {
        sag_core::engine::inject_zone_worker_panic(true);
        let mut outcome = Ok(());
        let stream = capture(|| {
            outcome = run_sag_with(
                &sc,
                SagPipelineConfig {
                    threads,
                    ..Default::default()
                },
            )
            .map(drop);
        });
        sag_core::engine::inject_zone_worker_panic(false);
        assert!(
            matches!(outcome, Err(SagError::WorkerPanic { .. })),
            "threads={threads}: expected WorkerPanic, got {outcome:?}"
        );
        let report = assert_frames(&stream, &["worker_panic"]);
        assert_single_tree(&report, &format!("threads={threads}"));
        let frame = &report.post_mortems[0];
        assert!(
            frame.stage.is_some(),
            "worker_panic frame must name a stage"
        );
        assert!(frame.zone.is_some(), "worker_panic frame must name a zone");
        // The dump line carries the ring timeline and span stack.
        let line = stream
            .lines()
            .find(|l| l.contains("\"kind\":\"post_mortem\""))
            .expect("dump line");
        assert!(line.contains("\"span_stack\":["));
        assert!(line.contains("\"ring\":{"));
    }
}

#[test]
fn budget_exhaustion_dumps_spend_accounting() {
    let _guard = ring_lock();
    let sc = build(8, 2, 11);
    let mut outcome = Ok(());
    let stream = capture(|| {
        outcome = run_sag_with(
            &sc,
            SagPipelineConfig {
                lower_solver: LowerSolver::IlpqcStrict,
                solver: SolverBuilder::fixed(SolverBackend::ExactIlp),
                budget: Budget::unlimited().with_node_limit(0),
                ..Default::default()
            },
        )
        .map(drop);
    });
    assert!(
        matches!(outcome, Err(SagError::BudgetExceeded { .. })),
        "expected BudgetExceeded, got {outcome:?}"
    );
    let report = assert_frames(&stream, &["budget_exceeded"]);
    assert_single_tree(&report, "budget_exceeded");
    assert_eq!(report.post_mortems[0].stage.as_deref(), Some("ilpqc"));
    let line = stream
        .lines()
        .find(|l| l.contains("\"kind\":\"post_mortem\""))
        .expect("dump line");
    assert!(
        line.contains("\"budget\":{"),
        "budget_exceeded frame must carry spend accounting: {line}"
    );
}

#[test]
fn ledger_desync_dumps_exactly_once() {
    let _guard = ring_lock();
    let sc = build(6, 2, 3);
    let mut eng = ChurnEngine::new(&sc, ChurnConfig::default()).expect("seed solve");
    eng.skew_ledger(0, 1e12);
    let mut outcome = Ok(());
    let stream = capture(|| {
        outcome = eng.apply_event(ChurnEvent::SsDepart { subscriber: 1 }, &Budget::unlimited());
    });
    assert!(
        matches!(outcome, Err(SagError::LedgerDesync(_))),
        "expected LedgerDesync, got {outcome:?}"
    );
    assert_frames(&stream, &["ledger_desync"]);
}

#[test]
fn churn_deferral_dumps_a_degradation_frame() {
    let _guard = ring_lock();
    let sc = build(7, 2, 5);
    let mut eng = ChurnEngine::new(&sc, ChurnConfig::default()).expect("seed solve");
    let to = sag_geom::Point::new(
        sc.subscribers[0].position.x + 5.0,
        sc.subscribers[0].position.y,
    );
    let starved = Budget::unlimited().with_deadline(Duration::ZERO);
    let stream = capture(|| {
        eng.apply_event(ChurnEvent::SsMove { subscriber: 0, to }, &starved)
            .expect("starved events defer, never fail");
    });
    assert!(
        eng.report().rung_count(RepairRung::Deferred) >= 1,
        "a zero deadline must land on the Deferred rung"
    );
    let report = assert_frames(&stream, &["churn_deferred"]);
    assert_eq!(report.post_mortems[0].stage.as_deref(), Some("churn"));
}

#[test]
fn portfolio_loser_panic_and_hang_both_dump() {
    let _guard = ring_lock();
    let sc = build(8, 2, 7);
    for (fault, class) in [
        (LoserFault::Panic, "portfolio_loser_panic"),
        (LoserFault::Hang, "portfolio_loser_hang"),
    ] {
        let mut outcome = None;
        let stream = capture(|| {
            outcome = run_sag_with(
                &sc,
                SagPipelineConfig {
                    lower_solver: LowerSolver::IlpqcWithGreedyFallback,
                    solver: SolverBuilder::portfolio(
                        SolverBackend::ExactIlp,
                        SolverBackend::Greedy,
                    )
                    .with_loser_fault(fault),
                    ..Default::default()
                },
            )
            .ok();
        });
        assert!(outcome.is_some(), "{fault:?}: the winner must still answer");
        let report = trace::analyze_str(&stream);
        assert_eq!(report.malformed, 0);
        assert_single_tree(&report, class);
        // One frame per race (one per zone solve), all of this class.
        assert!(
            !report.post_mortems.is_empty(),
            "{fault:?}: loser death left no forensics frame"
        );
        for frame in &report.post_mortems {
            assert_eq!(frame.class, class);
            assert_eq!(frame.stage.as_deref(), Some("portfolio"));
        }
        let line = stream
            .lines()
            .find(|l| l.contains("\"kind\":\"post_mortem\""))
            .expect("dump line");
        assert!(
            line.contains("\"backend\":\"greedy\""),
            "{fault:?}: frame must name the losing backend: {line}"
        );
    }
}

#[test]
fn analyzer_survives_truncated_and_interleaved_streams() {
    let _guard = ring_lock();
    let sc = build(8, 2, 7);
    let stream = capture(|| {
        run_sag_with(
            &sc,
            SagPipelineConfig {
                threads: 4,
                ..Default::default()
            },
        )
        .expect("scenario is feasible");
    });
    // Truncation at any byte (a crashed process mid-write) must never
    // panic the analyzer; at most the cut line goes malformed.
    for frac in [0.15, 0.5, 0.85] {
        let cut = (stream.len() as f64 * frac) as usize;
        let report = trace::analyze_str(&stream[..cut]);
        assert!(
            report.malformed <= 1,
            "truncation made {} lines malformed",
            report.malformed
        );
    }
    // Two runs' streams interleaved line by line (concurrent captures
    // sharing one file): span ids are process-unique, so the analyzer
    // sees two disjoint trees, not a corrupted one.
    let second = capture(|| {
        run_sag_with(&sc, SagPipelineConfig::default()).expect("scenario is feasible");
    });
    let mut merged = String::new();
    let (mut a, mut b) = (stream.lines(), second.lines());
    loop {
        match (a.next(), b.next()) {
            (None, None) => break,
            (x, y) => {
                for line in [x, y].into_iter().flatten() {
                    merged.push_str(line);
                    merged.push('\n');
                }
            }
        }
    }
    let report = trace::analyze_str(&merged);
    assert_eq!(report.malformed, 0);
    assert_eq!(report.roots.len(), 2, "two runs = two roots");
    assert!(report.orphans.is_empty());
}

#[test]
fn validator_and_analyzer_survive_byte_flip_fuzz() {
    let _guard = ring_lock();
    let _catalogued = Fault::ObsSinkFail; // the corruption family realised here
    let sc = build(6, 2, 13);
    sag_core::engine::inject_zone_worker_panic(true);
    let stream = capture(|| {
        let _ = run_sag_with(&sc, SagPipelineConfig::default());
    });
    sag_core::engine::inject_zone_worker_panic(false);
    assert!(stream.contains("\"kind\":\"post_mortem\""));
    let mut rng = Rng::seed_from_u64(0xF1A9);
    let mut rejected = 0usize;
    for _ in 0..300 {
        let mut bytes = stream.clone().into_bytes();
        flip_byte(&mut rng, &mut bytes);
        let corrupted = String::from_utf8_lossy(&bytes).into_owned();
        // Neither the validator nor the analyzer may panic on any
        // corrupted line; invalid lines are counted, not fatal.
        let mut any_invalid = false;
        for line in corrupted.lines().filter(|l| !l.trim().is_empty()) {
            if sag_obs::json::validate(line).is_err() {
                any_invalid = true;
            }
            let _ = sag_obs::json::field_str(line, "kind");
            let _ = sag_obs::json::field_u64(line, "id");
        }
        let report = trace::analyze_str(&corrupted);
        if any_invalid {
            rejected += 1;
            assert!(report.malformed >= 1);
        }
    }
    assert!(
        rejected > 0,
        "300 byte flips never produced an invalid line — fuzz is toothless"
    );
}
