//! Cross-solver validation: the three lower-tier solvers (SAMC, ILPQC
//! over IAC, ILPQC over GAC) must agree on feasibility structure and
//! respect the orderings the paper reports, and the two LPQC power
//! solvers (fixed point vs simplex) must agree numerically.

use sag_core::candidates::{gac_candidates, iac_candidates, prune_useless};
use sag_core::coverage::{is_feasible, CoverageSolution};
use sag_core::ilpqc::{solve_ilpqc, IlpqcConfig};
use sag_core::pro::{allocation_is_feasible, optimal_power, optimal_power_lp, pro};
use sag_core::samc::{samc, samc_with, HittingStrategy, SamcConfig};
use sag_geom::Point;
use sag_integration::scenario;
use sag_sim::gen::ScenarioSpec;

#[test]
fn ilpqc_matches_hand_computed_optimum() {
    // Two clusters, each coverable by one candidate; plus a decoy.
    let sc = scenario(
        500.0,
        &[(0.0, 0.0, 35.0), (30.0, 0.0, 35.0), (200.0, 0.0, 30.0)],
        &[(240.0, 240.0)],
        -15.0,
    );
    let cands = vec![
        Point::new(15.0, 0.0),
        Point::new(200.0, 0.0),
        Point::new(-100.0, -100.0),
    ];
    let out = solve_ilpqc(&sc, &cands, IlpqcConfig::default()).unwrap();
    assert!(out.optimal);
    assert_eq!(out.solution.n_relays(), 2);
    assert!(is_feasible(&sc, &out.solution));
}

#[test]
fn samc_beats_or_matches_candidate_solvers_on_average() {
    let mut samc_total = 0.0;
    let mut iac_total = 0.0;
    let mut gac_total = 0.0;
    let mut counted = 0;
    for seed in 0..6u64 {
        let sc = ScenarioSpec {
            field_size: 400.0,
            n_subscribers: 10,
            n_base_stations: 2,
            snr_db: -15.0,
            ..Default::default()
        }
        .build(seed);
        let s = samc(&sc).ok().map(|s| s.n_relays());
        let iac = iac_candidates(&sc);
        let i = solve_ilpqc(&sc, &iac, IlpqcConfig::default())
            .ok()
            .map(|o| o.solution.n_relays());
        let gac = prune_useless(&sc, gac_candidates(&sc, 16.0));
        let g = solve_ilpqc(&sc, &gac, IlpqcConfig::default())
            .ok()
            .map(|o| o.solution.n_relays());
        if let (Some(s), Some(i), Some(g)) = (s, i, g) {
            samc_total += s as f64;
            iac_total += i as f64;
            gac_total += g as f64;
            counted += 1;
        }
    }
    assert!(counted >= 4, "most seeds must be solvable by all three");
    // The Fig. 3 ordering on averages: SAMC ≤ IAC ≤ GAC (small slack for
    // the tiny sample).
    assert!(
        samc_total <= iac_total + 1.0,
        "SAMC {samc_total} vs IAC {iac_total}"
    );
    assert!(
        iac_total <= gac_total + 1.0,
        "IAC {iac_total} vs GAC {gac_total}"
    );
}

#[test]
fn fixed_point_agrees_with_simplex_on_spread_relays() {
    // Relays kept away from subscribers so the LP stays well-conditioned;
    // then the two independent optimal-power implementations must agree.
    let sc = scenario(
        500.0,
        &[(0.0, 0.0, 40.0), (70.0, 0.0, 40.0), (35.0, 60.0, 40.0)],
        &[(200.0, 200.0)],
        -12.0,
    );
    let sol = CoverageSolution {
        relays: vec![
            Point::new(10.0, 5.0),
            Point::new(60.0, -5.0),
            Point::new(30.0, 50.0),
        ],
        assignment: vec![0, 1, 2],
    };
    assert!(is_feasible(&sc, &sol));
    let fp = optimal_power(&sc, &sol).unwrap();
    let lp = optimal_power_lp(&sc, &sol).unwrap();
    assert!(
        (fp.total() - lp.total()).abs() / fp.total() < 1e-6,
        "fixed point {} vs simplex {}",
        fp.total(),
        lp.total()
    );
    assert!(allocation_is_feasible(&sc, &sol, &fp));
    assert!(allocation_is_feasible(&sc, &sol, &lp));
}

#[test]
fn pro_within_theorem_bound_across_seeds() {
    for seed in 0..6u64 {
        let sc = ScenarioSpec {
            field_size: 500.0,
            n_subscribers: 15,
            snr_db: -15.0,
            ..Default::default()
        }
        .build(seed);
        let Ok(sol) = samc(&sc) else { continue };
        let reduced = pro(&sc, &sol);
        let opt = optimal_power(&sc, &sol).unwrap();
        assert!(
            reduced.total() <= opt.total() * 3.0 + 1e-9,
            "seed {seed}: PRO {} vs optimal {} — far outside any sane φ",
            reduced.total(),
            opt.total()
        );
        assert!(
            opt.total() <= reduced.total() + 1e-9,
            "seed {seed}: optimality violated"
        );
    }
}

#[test]
fn hitting_strategies_all_yield_feasible_coverage() {
    let sc = ScenarioSpec {
        field_size: 400.0,
        n_subscribers: 12,
        snr_db: -15.0,
        ..Default::default()
    }
    .build(2);
    for strategy in [
        HittingStrategy::LocalSearch,
        HittingStrategy::Greedy,
        HittingStrategy::Exact,
    ] {
        let sol = samc_with(&sc, SamcConfig { hitting: strategy }).unwrap();
        assert!(is_feasible(&sc, &sol), "{strategy:?}");
    }
}

/// Backend cross-validation: the sparse revised simplex and the dense
/// tableau oracle must report the same ILPQC objective (relay count and
/// proven optimality) on every zone of a partitioned scenario — the
/// same per-zone route the parallel engine takes.
#[test]
fn ilpqc_backends_agree_per_zone() {
    use sag_core::zone::{zone_partition, zone_scenario};
    use sag_lp::{push_backend_override, LpBackend};

    let mut zones_checked = 0usize;
    for seed in 0..5u64 {
        let sc = ScenarioSpec {
            field_size: 600.0,
            n_subscribers: 14,
            n_base_stations: 2,
            snr_db: -15.0,
            ..Default::default()
        }
        .build(seed);
        for zone in zone_partition(&sc) {
            let (zsc, _members) = zone_scenario(&sc, &zone);
            let cands = iac_candidates(&zsc);
            let sparse = {
                let _g = push_backend_override(Some(LpBackend::Sparse));
                solve_ilpqc(&zsc, &cands, IlpqcConfig::default()).ok()
            };
            let dense = {
                let _g = push_backend_override(Some(LpBackend::Dense));
                solve_ilpqc(&zsc, &cands, IlpqcConfig::default()).ok()
            };
            match (sparse, dense) {
                (Some(s), Some(d)) => {
                    assert_eq!(
                        s.solution.n_relays(),
                        d.solution.n_relays(),
                        "seed {seed}: sparse {} vs dense {} relays",
                        s.solution.n_relays(),
                        d.solution.n_relays()
                    );
                    assert_eq!(s.optimal, d.optimal, "seed {seed}: optimality flags differ");
                    zones_checked += 1;
                }
                (None, None) => {} // both infeasible — consistent
                (s, d) => panic!(
                    "seed {seed}: backend feasibility disagreement sparse={:?} dense={:?}",
                    s.map(|o| o.solution.n_relays()),
                    d.map(|o| o.solution.n_relays())
                ),
            }
        }
    }
    assert!(
        zones_checked >= 5,
        "too few solvable zones ({zones_checked})"
    );
}

/// Brute force over every candidate subset: the ILPQC's claimed optimum
/// must match on instances small enough to enumerate.
#[test]
fn ilpqc_matches_exhaustive_enumeration() {
    use sag_core::coverage::{assign_nearest, snr_violations};

    for seed in 0..8u64 {
        let sc = ScenarioSpec {
            field_size: 300.0,
            n_subscribers: 4,
            n_base_stations: 1,
            snr_db: -12.0,
            ..Default::default()
        }
        .build(seed);
        let cands = iac_candidates(&sc);
        if cands.len() > 14 {
            continue; // keep 2^n enumeration cheap
        }
        let ilp = solve_ilpqc(&sc, &cands, IlpqcConfig::default()).ok();

        // Exhaustive search over all subsets.
        let mut best: Option<usize> = None;
        for mask in 1u32..(1 << cands.len()) {
            let subset: Vec<sag_geom::Point> = (0..cands.len())
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| cands[i])
                .collect();
            let Some(assignment) = assign_nearest(&sc, &subset) else {
                continue;
            };
            if snr_violations(&sc, &subset, &assignment).is_empty() {
                let k = subset.len();
                if best.is_none_or(|b| k < b) {
                    best = Some(k);
                }
            }
        }

        match (ilp, best) {
            (Some(out), Some(opt)) => {
                assert!(out.optimal, "seed {seed}: solver did not prove optimality");
                assert_eq!(
                    out.solution.n_relays(),
                    opt,
                    "seed {seed}: ILPQC {} vs exhaustive {opt}",
                    out.solution.n_relays()
                );
            }
            (None, None) => {} // both infeasible — consistent
            (a, b) => panic!(
                "seed {seed}: feasibility disagreement ilp={:?} brute={b:?}",
                a.map(|o| o.solution.n_relays())
            ),
        }
    }
}
