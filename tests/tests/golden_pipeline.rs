//! Golden-scenario regression tests: fixed seeds in, committed numbers
//! out.
//!
//! Each test renders a deterministic artefact of the paper pipeline —
//! the Fig. 3 coverage comparison, the Table II MBMC-vs-MUST rows, and
//! full SAG pipeline placement/power summaries over a small scenario
//! grid — and compares it against a file under `tests/golden/`. Any
//! intentional algorithm change shows up as a reviewable text diff;
//! regenerate with `SAG_UPDATE_GOLDEN=1 cargo test -p sag-integration`.
//!
//! Relay *counts* are committed exactly. Power totals are committed to
//! six significant digits so the goldens survive benign floating-point
//! reassociation while still pinning real behaviour changes.

use sag_core::sag::run_sag;
use sag_core::validate::validate_report;
use sag_sim::experiments::{fig3, table2};
use sag_sim::gen::{BsLayout, ScenarioSpec};
use sag_sim::runner::SweepConfig;
use sag_testkit::golden::assert_golden;

fn golden_path(name: &str) -> String {
    format!("{}/golden/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Reduced sweep: 2 runs per cell keeps the suite fast while still
/// averaging across seeds like the paper does.
fn golden_sweep() -> SweepConfig {
    SweepConfig {
        runs: 2,
        base_seed: 1,
        threads: 4,
    }
}

/// Six-significant-digit rendering for power totals.
fn sig6(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    let mag = x.abs().log10().floor() as i32;
    let decimals = (5 - mag).max(0) as usize;
    format!("{x:.decimals$}")
}

#[test]
fn golden_fig3_coverage_pipeline() {
    // The Fig. 3(a) engine at reduced scale: IAC vs GAC vs SAMC coverage
    // relay counts across user loads, fixed seeds.
    let table = fig3::fig3a(golden_sweep());
    assert_golden(golden_path("fig3a_coverage.txt"), &table.to_string());
}

#[test]
fn golden_table2_mbmc_vs_must() {
    let table = table2::table2(golden_sweep());
    assert_golden(golden_path("table2_mbmc_vs_must.txt"), &table.to_string());
}

#[test]
fn golden_sag_pipeline_scenarios() {
    // The tentpole golden-scenario runner: fixed-seed SS/BS topologies
    // through the full coverage → PRO → MBMC → UCPO pipeline. Every
    // feasible case must pass the structural audit *and* match its
    // committed placement counts and power summary.
    let grid = [
        (300.0, 8, 2, -15.0, BsLayout::Uniform, 11u64),
        (300.0, 12, 3, -12.0, BsLayout::Corners, 12),
        (500.0, 20, 4, -15.0, BsLayout::Uniform, 13),
        (500.0, 30, 4, -15.0, BsLayout::Corners, 14),
        (800.0, 25, 3, -20.0, BsLayout::Uniform, 15),
        (800.0, 40, 4, -15.0, BsLayout::Uniform, 16),
    ];
    let mut out =
        String::from("field users bss snr layout seed -> cover connect lower_p upper_p total_p\n");
    for (field, users, bss, snr, layout, seed) in grid {
        let sc = ScenarioSpec {
            field_size: field,
            n_subscribers: users,
            n_base_stations: bss,
            snr_db: snr,
            bs_layout: layout,
            ..Default::default()
        }
        .build(seed);
        let row = match run_sag(&sc) {
            Ok(report) => {
                let audit = validate_report(&sc, &report);
                assert!(audit.is_clean(), "audit failed for seed {seed}:\n{audit}");
                let p = report.power_summary();
                format!(
                    "{} {} {} {}",
                    report.n_coverage_relays(),
                    report.plan.n_relays(),
                    sig6(p.lower),
                    sig6(p.upper),
                ) + &format!(" {}", sig6(p.total))
            }
            Err(e) => format!("infeasible ({e})"),
        };
        out.push_str(&format!(
            "{field} {users} {bss} {snr} {layout:?} {seed} -> {row}\n"
        ));
    }
    assert_golden(golden_path("sag_pipeline_scenarios.txt"), &out);
}
