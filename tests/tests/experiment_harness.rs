//! Integration coverage of the experiment harness itself: the paper's
//! qualitative claims must hold on small instances of every experiment.

use sag_sim::experiments::{fig3, fig45, fig6, fig7, table2};
use sag_sim::runner::SweepConfig;

fn tiny() -> SweepConfig {
    SweepConfig {
        runs: 1,
        base_seed: 11,
        threads: 4,
    }
}

#[test]
fn table2_mbmc_dominates_every_must() {
    let t = table2::table2(tiny());
    assert_eq!(t.series.len(), 5);
    let mbmc = &t.series[4];
    for (i, &n_bs) in t.xs.iter().enumerate() {
        let m = mbmc.cells[i].mean.expect("MBMC always solves");
        for b in 0..(n_bs as usize) {
            if let Some(mu) = t.series[b].cells[i].mean {
                assert!(
                    m <= mu + 1e-9,
                    "MBMC {m} > MUST BS{} {mu} at {n_bs} BSs",
                    b + 1
                );
            }
        }
        // MUST pinned to an absent BS must be N/A.
        for b in (n_bs as usize)..4 {
            assert!(t.series[b].cells[i].mean.is_none());
        }
    }
    // With a single BS, MBMC degenerates to MUST BS1 exactly.
    assert_eq!(t.series[0].cells[0].mean, mbmc.cells[0].mean);
}

#[test]
fn fig3d_snr_sweep_structure() {
    let t = fig3::fig3d(tiny());
    assert_eq!(t.series.len(), 3);
    assert_eq!(t.xs.first(), Some(&-14.0));
    assert_eq!(t.xs.last(), Some(&-10.0));
    // SAMC's relay count is bounded by the subscriber count whenever it
    // solves, and it must solve at least the loosest threshold.
    let samc = &t.series[2];
    assert!(samc.cells[0].mean.is_some(), "SAMC must solve at −14 dB");
    for c in &samc.cells {
        if let Some(m) = c.mean {
            assert!((1.0..=30.0).contains(&m));
        }
    }
    // Feasibility can only be lost, never gained, as β tightens — checked
    // on the feasible-run *counts*, which are monotone in aggregate.
    // (Counts are per-cell over identical seeds, so a later cell with
    // more feasible runs than an earlier one would mean a run that failed
    // at −14 dB succeeded at −10 dB on the same seed.)
    let feas: Vec<usize> = samc.cells.iter().map(|c| c.feasible_runs).collect();
    for w in feas.windows(2) {
        assert!(
            w[1] <= w[0] + 1,
            "feasible runs jumped {} -> {}",
            w[0],
            w[1]
        );
    }
}

#[test]
fn fig45_power_panels_consistent() {
    let a = fig45::power_pro(500.0, tiny());
    for i in 0..a.xs.len() {
        if let (Some(base), Some(pro)) = (a.series[0].cells[i].mean, a.series[1].cells[i].mean) {
            assert!(pro <= base + 1e-9);
            // Baseline is exactly #relays × Pmax, so it is an integer
            // under Pmax = 1.
            assert!((base - base.round()).abs() < 1e-9);
        }
    }
    let d = fig45::power_ucpo(500.0, tiny());
    for i in 0..d.xs.len() {
        if let (Some(base), Some(u)) = (d.series[0].cells[i].mean, d.series[1].cells[i].mean) {
            assert!(u <= base + 1e-9);
            assert!(u > 0.0);
        }
    }
}

#[test]
fn fig7_sag_dominates_all_darp_combos() {
    let t = fig7::fig7(300.0, tiny());
    for i in 0..t.xs.len() {
        if let Some(sag) = t.series[0].cells[i].mean {
            for s in 1..4 {
                if let Some(d) = t.series[s].cells[i].mean {
                    assert!(
                        sag <= d + 1e-9,
                        "SAG {sag} worse than {} {d} at {} users",
                        t.series[s].name,
                        t.xs[i]
                    );
                }
            }
        }
    }
}

#[test]
fn fig6_panels_have_consistent_structure() {
    for dump in fig6::fig6(7) {
        assert_eq!(dump.subscribers.len(), 30);
        assert_eq!(dump.base_stations.len(), 4);
        assert!(!dump.coverage_relays.is_empty());
        // Every link endpoint is a known entity or a connectivity relay.
        let known: Vec<sag_geom::Point> = dump
            .coverage_relays
            .iter()
            .chain(&dump.connectivity_relays)
            .chain(&dump.base_stations)
            .copied()
            .collect();
        for (a, b) in &dump.links {
            for p in [a, b] {
                assert!(
                    known.iter().any(|k| k.approx_eq(*p)),
                    "{}: link endpoint {p} is not a station",
                    dump.name
                );
            }
        }
        // CSV renders every entity.
        let csv = dump.to_csv();
        assert_eq!(
            csv.lines().count(),
            1 + dump.subscribers.len()
                + dump.base_stations.len()
                + dump.coverage_relays.len()
                + dump.connectivity_relays.len()
                + dump.links.len()
        );
    }
}

#[test]
fn csv_outputs_parse_back() {
    let t = table2::table2(tiny());
    let csv = t.to_csv();
    let mut lines = csv.lines();
    let header = lines.next().unwrap();
    assert_eq!(header.split(',').count(), 6); // x + 5 series
    for line in lines {
        assert_eq!(line.split(',').count(), 6);
        let x: f64 = line.split(',').next().unwrap().parse().unwrap();
        assert!((1.0..=4.0).contains(&x));
    }
}
