//! Determinism gate for the batched sweep engine.
//!
//! Extends the `par_determinism` contract from the zone engine to
//! whole parameter sweeps: the batched, fingerprint-cached path must
//! produce byte-identical `CellStats` to the pre-existing per-cell
//! reference path at any thread count, with a cold or warm cache, and
//! under adversarial work-queue interleavings (seeded shuffle). The
//! cache may only change *when* an artifact is built, never its value.
//!
//! Comparison is through the series' `Debug` rendering: Rust formats
//! floats as the shortest round-tripping string, so equal renderings
//! imply bit-equal values.

use sag_testkit::prelude::*;

use sag_sim::batch::{
    sweep_multi_cached, sweep_multi_reference, sweep_multi_with, BatchCtx, JobOrder, SweepCache,
    SweepOptions,
};
use sag_sim::experiments::{relays_metric, run_gac_cached, run_samc_cached};
use sag_sim::gen::ScenarioSpec;
use sag_sim::runner::{sweep_multi, SweepConfig};
use sag_sim::stats::CellStats;

/// The swept x axis: GAC grid sizes over a fixed scenario family, the
/// Fig. 3(e) shape where the invariant cache actually shares work.
const GRIDS: [f64; 3] = [20.0, 30.0, 40.0];

fn fp(series: &[Vec<CellStats>]) -> String {
    format!("{series:?}")
}

fn spec(users: usize) -> ScenarioSpec {
    ScenarioSpec {
        field_size: 300.0,
        n_subscribers: users,
        ..Default::default()
    }
}

/// A real build-and-solve eval: scenarios pinned across x (`seed %
/// 1000`), SAMC shared through the cache, GAC re-solved per grid.
fn eval_for(users: usize) -> impl Fn(&BatchCtx<'_>, f64, u64) -> Vec<Option<f64>> + Sync {
    move |ctx, grid, seed| {
        let sp = spec(users);
        let seed = seed % 1000;
        vec![
            relays_metric(&run_samc_cached(ctx, &sp, seed)),
            relays_metric(&run_gac_cached(ctx, &sp, seed, grid)),
        ]
    }
}

prop! {
    /// The headline gate: batched results equal the per-cell reference
    /// at threads 1 and 8, row-major and shuffled, lanes narrow and
    /// wide — byte for byte, on real scenario-build-and-solve evals.
    #[cases(6)]
    fn batched_sweep_matches_reference_under_any_schedule(
        input in (5usize..9, 0u64..500, 0u64..100_000)
    ) {
        let (users, base_seed, shuffle_seed) = input;
        let eval = eval_for(users);
        let config = SweepConfig { runs: 2, base_seed, threads: 1 };
        let want = fp(&sweep_multi_reference(&GRIDS, 2, config, &eval));
        for threads in [1usize, 8] {
            for (label, opts) in [
                ("row-major", SweepOptions::default()),
                (
                    "shuffled",
                    SweepOptions {
                        order: JobOrder::Shuffled(shuffle_seed),
                        ..Default::default()
                    },
                ),
                (
                    "lanes=1",
                    SweepOptions {
                        lanes: 1,
                        ..Default::default()
                    },
                ),
            ] {
                let cfg = SweepConfig { threads, ..config };
                let got = fp(&sweep_multi_with(&GRIDS, 2, cfg, opts, &eval));
                prop_assert_eq!(
                    &got,
                    &want,
                    "batched sweep diverged from reference (threads={}, {})",
                    threads,
                    label
                );
            }
        }
    }

    /// Cache-hit vs cache-cold: a warm cache reused across sweeps must
    /// rebuild nothing and still reproduce the cold results byte for
    /// byte — hits are observationally invisible except in speed.
    #[cases(4)]
    fn warm_cache_is_byte_identical_to_cold(input in (5usize..9, 0u64..500)) {
        let (users, base_seed) = input;
        let eval = eval_for(users);
        let config = SweepConfig { runs: 2, base_seed, threads: 4 };
        let cache = SweepCache::new();
        let opts = || SweepOptions {
            cache: Some(cache.clone()),
            ..Default::default()
        };
        let cold = fp(&sweep_multi_with(&GRIDS, 2, config, opts(), &eval));
        let after_cold = cache.stats();
        let warm = fp(&sweep_multi_with(&GRIDS, 2, config, opts(), &eval));
        let after_warm = cache.stats();
        prop_assert_eq!(&cold, &warm, "warm cache changed sweep results");
        prop_assert_eq!(
            after_warm.misses, after_cold.misses,
            "a warm sweep rebuilt an artifact it should have reused"
        );
        prop_assert!(
            after_warm.hits > after_cold.hits,
            "the warm sweep never touched the cache"
        );
    }
}

/// The cached wrappers must be a pure routing layer: a sweep through
/// them equals the same sweep written as plain build-and-solve
/// closures on the uncached entry point.
#[test]
fn cached_wrappers_equal_plain_closures() {
    use sag_sim::experiments::{run_gac, run_samc};
    let users = 6;
    let config = SweepConfig {
        runs: 2,
        base_seed: 9,
        threads: 4,
    };
    let cached = sweep_multi_cached(&GRIDS, 2, config, eval_for(users));
    let plain = sweep_multi(&GRIDS, 2, config, |grid, seed| {
        let sc = spec(users).build(seed % 1000);
        vec![
            run_samc(&sc).map(|s| s.n_relays() as f64),
            run_gac(&sc, grid).map(|s| s.n_relays() as f64),
        ]
    });
    assert_eq!(
        fp(&cached),
        fp(&plain),
        "cached wrappers changed sweep values"
    );
}

/// Regression for the failed-vs-infeasible conflation: a crashed run
/// must surface in `failed_runs` only, never in the infeasibility
/// accounting, and `failed_runs` must be distinguishable from
/// `total_runs - feasible_runs`.
#[test]
fn failed_runs_stay_out_of_the_infeasible_denominator() {
    let config = SweepConfig {
        runs: 4,
        base_seed: 0,
        threads: 2,
    };
    // Run r=0 panics, r=1 reports infeasible, r=2 and r=3 answer.
    let series = sweep_multi_cached(&[0usize], 1, config, |_ctx, _x, seed| match seed % 4 {
        0 => panic!("injected crash"),
        1 => vec![None],
        _ => vec![Some(1.0)],
    });
    let cell = &series[0][0];
    assert_eq!(cell.total_runs, 4);
    assert_eq!(cell.feasible_runs, 2);
    assert_eq!(cell.failed_runs, 1);
    assert_eq!(cell.infeasible_runs, 1);
    // The old conflation: total - feasible (= 2) is NOT the failure
    // count (= 1); the two must be reported apart.
    assert_ne!(cell.failed_runs, cell.total_runs - cell.feasible_runs);
    // Rate over completed runs only: 1 infeasible of 3 completed.
    let rate = cell.infeasibility_rate().expect("runs completed");
    assert!((rate - 1.0 / 3.0).abs() < 1e-12, "rate {rate}");
}

/// A crashed lane must not poison cached artifacts for other lanes:
/// cells sharing the poisoned cell's scenario still aggregate.
#[test]
fn panicking_lane_does_not_poison_shared_cache_entries() {
    let config = SweepConfig {
        runs: 2,
        base_seed: 3,
        threads: 4,
    };
    let eval = eval_for(6);
    let series = sweep_multi_cached(&GRIDS, 2, config, |ctx, grid, seed| {
        // The middle grid's first run dies *after* touching the shared
        // scenario artifacts.
        let out = eval(ctx, grid, seed);
        if grid == GRIDS[1] && seed % 1000 == 3 {
            panic!("injected post-cache crash");
        }
        out
    });
    for cells in &series {
        assert_eq!(cells[1].failed_runs, 1, "crash not surfaced");
        for i in [0usize, 2] {
            assert_eq!(cells[i].failed_runs, 0, "crash leaked into cell {i}");
            assert_eq!(
                cells[i].feasible_runs + cells[i].infeasible_runs,
                cells[i].total_runs,
                "shared-cache cell {i} lost runs"
            );
        }
    }
}
