//! Workspace chaos suite: the robustness contract, end to end.
//!
//! The invariant every test here asserts is the PR-2 contract: **any
//! input — however adversarial — produces a typed error or a validated
//! feasible report; never a panic, never a run past its deadline plus a
//! scheduling epsilon.** Structural faults come from the shared
//! [`sag_testkit::chaos::Fault`] catalogue, realised against concrete
//! scenarios by [`sag_integration::apply_fault`].

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sag_testkit::prelude::*;

use sag_core::model::Scenario;
use sag_core::sag::{run_sag_with, AnsweringSolver, LowerSolver, SagPipelineConfig};
use sag_core::validate::validate_report;
use sag_core::{LoserFault, SagError, SolverBackend, SolverBuilder};
use sag_integration::{apply_fault, scenario};
use sag_lp::Budget;
use sag_sim::gen::{BsLayout, ScenarioSpec};
use sag_sim::runner::{sweep_multi, SweepConfig};

fn arb_spec() -> impl Strategy<Value = (usize, usize, f64, u64)> {
    (
        2usize..12,                    // subscribers
        1usize..4,                     // base stations
        one_of([300.0, 500.0, 800.0]), // field size
        0u64..100_000,                 // scenario seed
    )
}

fn build(input: (usize, usize, f64, u64)) -> Scenario {
    let (users, bss, field, seed) = input;
    ScenarioSpec {
        field_size: field,
        n_subscribers: users,
        n_base_stations: bss,
        snr_db: -15.0,
        bs_layout: BsLayout::Uniform,
        ..Default::default()
    }
    .build(seed)
}

/// Is `e` one of the typed errors the robustness contract admits?
fn is_typed_rejection(e: &SagError) -> bool {
    matches!(
        e,
        SagError::InvalidScenario(_)
            | SagError::Infeasible(_)
            | SagError::BudgetExceeded { .. }
            | SagError::NoSubscribers
            | SagError::NoBaseStations
            | SagError::WorkerPanic { .. }
            | SagError::Lp(_)
    )
}

prop! {
    /// The headline property: every catalogue fault, applied to a
    /// random generated scenario, yields either a typed rejection or a
    /// report that passes the independent audit. Nothing panics.
    #[cases(28)]
    fn any_faulted_scenario_errs_or_validates(input in arb_spec(), fidx in 0usize..14, salt in 0u64..1_000) {
        let mut rng = Rng::seed_from_u64(salt);
        let fault = Fault::all()[fidx];
        let mut sc = build(input);
        apply_fault(&mut sc, fault, &mut rng);
        match run_sag_with(&sc, SagPipelineConfig::default()) {
            Err(e) => prop_assert!(is_typed_rejection(&e), "untyped error {e}"),
            Ok(report) => {
                // A report that comes back from a mutated scenario must
                // still be internally consistent and feasible.
                let audit = validate_report(&sc, &report);
                prop_assert!(audit.is_clean(), "fault {fault:?} produced a dirty report:\n{audit}");
            }
        }
    }

    /// Compound chaos: several random faults stacked on one scenario.
    #[cases(16)]
    fn stacked_faults_never_panic(input in arb_spec(), salt in 0u64..1_000, n_faults in 1usize..4) {
        let mut rng = Rng::seed_from_u64(salt.wrapping_mul(0x9E37_79B9));
        let mut sc = build(input);
        for _ in 0..n_faults {
            let f = Fault::sample(&mut rng);
            apply_fault(&mut sc, f, &mut rng);
        }
        match run_sag_with(&sc, SagPipelineConfig::default()) {
            Err(e) => prop_assert!(is_typed_rejection(&e), "untyped error {e}"),
            Ok(report) => prop_assert!(validate_report(&sc, &report).is_clean()),
        }
    }

    /// Poisoned-float ingress: raw `poisoned_f64` values dropped into a
    /// subscriber must be caught at the `validate()` gate.
    #[cases(24)]
    fn poisoned_ingress_is_rejected_or_survives(input in arb_spec(), salt in 0u64..1_000) {
        let mut rng = Rng::seed_from_u64(salt);
        let mut sc = build(input);
        let i = rng.gen_range(0usize..sc.subscribers.len());
        sc.subscribers[i].distance_req = poisoned_f64(&mut rng);
        match run_sag_with(&sc, SagPipelineConfig::default()) {
            Err(e) => prop_assert!(is_typed_rejection(&e), "untyped error {e}"),
            Ok(report) => prop_assert!(validate_report(&sc, &report).is_clean()),
        }
    }
}

/// Acceptance: an ILPQC run starved of budget provably degrades to the
/// greedy cover, and the report says so.
#[test]
fn starved_ilpqc_falls_back_to_greedy_and_reports_it() {
    let sc = scenario(
        500.0,
        &[(0.0, 0.0, 30.0), (20.0, 0.0, 30.0), (0.0, 20.0, 30.0)],
        &[(100.0, 100.0)],
        -15.0,
    );
    let config = SagPipelineConfig {
        lower_solver: LowerSolver::IlpqcWithGreedyFallback,
        // Pinned: this acceptance is about the exact → greedy ladder,
        // whatever `SAG_SOLVER` says in CI.
        solver: SolverBuilder::fixed(SolverBackend::ExactIlp),
        budget: Budget::unlimited().with_node_limit(0),
        ..Default::default()
    };
    let report = run_sag_with(&sc, config).expect("fallback must answer");
    assert_eq!(report.solver, AnsweringSolver::GreedyFallback);
    // The recorded budget reflects what ILPQC burned before giving up.
    assert!(report.budget_spent.nodes <= 1);
    let audit = validate_report(&sc, &report);
    assert!(audit.is_clean(), "fallback report dirty:\n{audit}");
}

/// The strict variant surfaces the same starvation as a typed error.
#[test]
fn starved_strict_ilpqc_reports_budget_exceeded() {
    let sc = scenario(500.0, &[(0.0, 0.0, 30.0)], &[(100.0, 100.0)], -15.0);
    let config = SagPipelineConfig {
        lower_solver: LowerSolver::IlpqcStrict,
        budget: Budget::unlimited().with_node_limit(0),
        ..Default::default()
    };
    match run_sag_with(&sc, config) {
        Err(SagError::BudgetExceeded { stage, .. }) => assert_eq!(stage, "ilpqc"),
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
}

/// Deadline honouring: a pipeline run with a wall-clock budget returns
/// (success or typed error) within deadline + a generous scheduling ε.
#[test]
fn deadline_is_honoured_within_epsilon() {
    let deadline = Duration::from_millis(50);
    let epsilon = Duration::from_secs(2); // generous: CI schedulers stall
    for seed in 0..8u64 {
        let sc = ScenarioSpec {
            field_size: 800.0,
            n_subscribers: 30,
            n_base_stations: 2,
            snr_db: -18.0,
            ..Default::default()
        }
        .build(seed);
        let config = SagPipelineConfig {
            lower_solver: LowerSolver::IlpqcStrict,
            budget: Budget::unlimited().with_deadline(deadline),
            ..Default::default()
        };
        let started = Instant::now();
        let out = run_sag_with(&sc, config);
        let took = started.elapsed();
        assert!(
            took < deadline + epsilon,
            "seed {seed}: run took {took:?}, budget was {deadline:?}"
        );
        if let Err(e) = out {
            assert!(is_typed_rejection(&e), "untyped error {e}");
        }
    }
}

/// A pre-cancelled budget short-circuits before any heavy work.
#[test]
fn cancellation_flag_stops_the_pipeline() {
    let flag = Arc::new(AtomicBool::new(true));
    let sc = scenario(500.0, &[(0.0, 0.0, 30.0)], &[(100.0, 100.0)], -15.0);
    let config = SagPipelineConfig {
        lower_solver: LowerSolver::IlpqcStrict,
        budget: Budget::unlimited().with_cancel_flag(Arc::clone(&flag)),
        ..Default::default()
    };
    match run_sag_with(&sc, config) {
        Err(SagError::BudgetExceeded { .. }) => {}
        other => panic!("expected BudgetExceeded from cancelled run, got {other:?}"),
    }
}

/// Acceptance for [`Fault::ZoneWorkerPanic`]: a zone worker that dies
/// mid-solve surfaces as the typed [`SagError::WorkerPanic`] — never a
/// propagated panic, never a hung merge — at any thread count.
#[test]
fn zone_worker_panic_surfaces_a_typed_error_not_a_hang() {
    let sc = build((8, 2, 500.0, 7));
    for threads in [1usize, 2, 4] {
        sag_core::engine::inject_zone_worker_panic(true);
        let out = run_sag_with(
            &sc,
            SagPipelineConfig {
                threads,
                ..Default::default()
            },
        );
        sag_core::engine::inject_zone_worker_panic(false);
        match out {
            Err(e @ SagError::WorkerPanic { .. }) => {
                assert!(is_typed_rejection(&e));
                assert!(e.to_string().contains("zone worker panicked"));
            }
            other => panic!("threads {threads}: expected WorkerPanic, got {other:?}"),
        }
        // The fault is scoped: a disarmed engine recovers immediately.
        assert!(run_sag_with(
            &sc,
            SagPipelineConfig {
                threads,
                ..Default::default()
            }
        )
        .is_ok());
    }
}

/// Acceptance for [`Fault::PortfolioLoserPanic`]: a losing portfolio
/// arm that panics (or hangs past its cancel flag) must never corrupt
/// the winner — the race commits the same clean answer as a faultless
/// run, and the loss surfaces only as a typed, counted event.
#[test]
fn portfolio_loser_death_leaves_the_winner_clean() {
    let sc = build((8, 2, 500.0, 7));
    let run = |fault: Option<LoserFault>| {
        let mut solver = SolverBuilder::portfolio(SolverBackend::ExactIlp, SolverBackend::Greedy);
        if let Some(f) = fault {
            solver = solver.with_loser_fault(f);
        }
        run_sag_with(
            &sc,
            SagPipelineConfig {
                lower_solver: LowerSolver::IlpqcWithGreedyFallback,
                solver,
                ..Default::default()
            },
        )
        .expect("portfolio run answers")
    };
    let clean = run(None);
    for fault in [LoserFault::Panic, LoserFault::Hang] {
        let faulted = run(Some(fault));
        // The winner's answer is untouched by the dying loser.
        assert_eq!(
            format!("{:?}|{:?}", clean.coverage, clean.lower_power),
            format!("{:?}|{:?}", faulted.coverage, faulted.lower_power),
            "{fault:?}: loser death changed the committed answer"
        );
        assert_eq!(faulted.solver, clean.solver);
        let audit = validate_report(&sc, &faulted);
        assert!(audit.is_clean(), "{fault:?} dirtied the report:\n{audit}");
        // The loss is a counted event, not a silent one.
        let m = &faulted.metrics;
        assert!(m.counter("portfolio.races") >= 1, "race must be counted");
        let losses = match fault {
            LoserFault::Panic => m.counter("portfolio.loser_panic"),
            LoserFault::Hang => m.counter("portfolio.loser_cancelled"),
        };
        assert!(losses >= 1, "{fault:?}: loss must surface as a counter");
    }
}

/// Acceptance for [`Fault::LpBasisDesync`]: a skewed LU factor in the
/// sparse LP core must be caught by the residual self-check — a
/// transient skew is repaired by refactorization (same objective as an
/// unfaulted solve), a persistent one surfaces as the typed
/// [`sag_lp::LpError::Numerical`]. Never a silently wrong answer.
///
/// The fault is armed with `inject_lu_skew`, which is thread-local, so
/// the test drives `solve_ilpqc` directly on this thread (the pipeline
/// route may hand zones to worker threads the skew cannot reach).
#[test]
fn lp_basis_desync_recovers_or_errs_typed_never_wrong() {
    use sag_core::candidates::iac_candidates;
    use sag_core::ilpqc::{solve_ilpqc, IlpqcConfig};
    use sag_lp::revised::{clear_lu_skew, inject_lu_skew};

    let sc = scenario(
        500.0,
        &[(0.0, 0.0, 30.0), (20.0, 0.0, 30.0), (0.0, 20.0, 30.0)],
        &[(100.0, 100.0)],
        -15.0,
    );
    let cands = iac_candidates(&sc);

    clear_lu_skew();
    let clean = solve_ilpqc(&sc, &cands, IlpqcConfig::default()).expect("clean solve succeeds");

    // Transient skew: the first factorization fails its residual check,
    // the rebuild runs clean, and the answer matches the unfaulted one.
    inject_lu_skew(0.5, false);
    let recovered = solve_ilpqc(&sc, &cands, IlpqcConfig::default());
    clear_lu_skew();
    match recovered {
        Ok(out) => assert_eq!(
            out.solution.relays.len(),
            clean.solution.relays.len(),
            "transient skew changed the answer"
        ),
        Err(e) => panic!("transient skew must be repaired, got {e:?}"),
    }

    // Persistent skew: every rebuild is poisoned, so the solver must
    // refuse with the typed numerical error rather than answer wrong.
    inject_lu_skew(0.5, true);
    let poisoned = solve_ilpqc(&sc, &cands, IlpqcConfig::default());
    clear_lu_skew();
    match poisoned {
        Err(SagError::Lp(sag_lp::LpError::Numerical(_))) => {}
        Ok(out) => assert_eq!(
            out.solution.relays.len(),
            clean.solution.relays.len(),
            "persistent skew produced a silently wrong answer"
        ),
        Err(e) => panic!("expected typed Numerical rejection, got {e:?}"),
    }
}

/// S1 regression: a deadline the lower tier legitimately consumed must
/// never be double-spent against the polynomial tail. Whatever the
/// timing, `BudgetExceeded` may only name the lower-tier stage — a
/// successful SAMC/ILPQC answer implies the tail completes.
#[test]
fn tail_stages_never_fail_on_a_deadline_the_lower_tier_spent() {
    for seed in 0..6u64 {
        for deadline_ms in [1u64, 5, 20, 60] {
            let sc = ScenarioSpec {
                field_size: 800.0,
                n_subscribers: 24,
                n_base_stations: 2,
                snr_db: -18.0,
                ..Default::default()
            }
            .build(seed);
            for solver in [LowerSolver::Samc, LowerSolver::IlpqcWithGreedyFallback] {
                let config = SagPipelineConfig {
                    lower_solver: solver,
                    budget: Budget::unlimited().with_deadline(Duration::from_millis(deadline_ms)),
                    ..Default::default()
                };
                if let Err(SagError::BudgetExceeded { stage, .. }) = run_sag_with(&sc, config) {
                    assert!(
                        stage == "samc" || stage == "ilpqc",
                        "seed {seed}, {deadline_ms}ms, {solver:?}: \
                         tail stage {stage:?} starved by a spent deadline"
                    );
                }
            }
        }
    }
}

/// Acceptance: a sweep whose eval panics on one cell completes and
/// reports the crash in `failed_runs` instead of tearing down the grid.
#[test]
fn sweep_with_panicking_cell_reports_failed_runs() {
    let xs = [10usize, 20, 30];
    let config = SweepConfig::new(4, 42, 2).expect("valid config");
    let grids = sweep_multi(&xs, 1, config, |x, seed| {
        if x == 20 && seed % 2 == 0 {
            panic!("injected chaos panic");
        }
        vec![Some(x as f64)]
    });
    let cells = &grids[0];
    assert_eq!(cells.len(), xs.len());
    assert_eq!(cells[0].failed_runs, 0);
    assert!(
        cells[1].failed_runs >= 1,
        "panics must surface as failed_runs"
    );
    assert_eq!(cells[2].failed_runs, 0);
    // Healthy cells keep their stats.
    assert_eq!(cells[0].mean, Some(10.0));
    assert_eq!(cells[2].mean, Some(30.0));
    // The poisoned cell still reports its surviving runs.
    assert_eq!(cells[1].total_runs, 4);
    assert!(cells[1].feasible_runs < 4);
}
