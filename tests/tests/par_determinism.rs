//! Determinism gate for the zone-parallel solve engine.
//!
//! The engine's contract ([`sag_core::engine`]): `threads = 1` and
//! `threads = N` produce byte-identical reports. Zones are solved
//! against private ledgers and merged in zone index order, so relay
//! coordinates, powers and the connectivity plan must not drift by a
//! single bit whatever the thread count.
//!
//! Comparison note: [`sag_core::mbmc::ConnectivityPlan`] carries no
//! `PartialEq`, so reports are compared through their `Debug`
//! rendering. Rust formats floats as the shortest string that
//! round-trips, so equal renderings imply bit-equal values (modulo NaN
//! payloads, which a validated report never contains).

use sag_testkit::prelude::*;

use sag_core::sag::{run_sag_with, LowerSolver, SagPipelineConfig, SagReport};
use sag_core::zone::zone_partition;
use sag_core::{SolverBackend, SolverBuilder};
use sag_sim::gen::{BsLayout, ScenarioSpec};

/// Everything in a report that must be identical across thread counts
/// (wall-clock spend and collected metrics legitimately differ).
fn fingerprint(report: &SagReport) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{}",
        report.coverage,
        report.lower_power,
        report.plan,
        report.upper_power,
        report.solver,
        report.budget_spent.nodes,
    )
}

/// The S1 gate: collected metrics must be identical too. Wall-clock
/// span durations legitimately differ, so spans contribute name and
/// count only; everything else — counter order and values, gauges
/// (bit-exact), histogram aggregates, buckets and raw sample order —
/// must match byte for byte, because parallel runs replay each zone's
/// buffered events in zone-index order.
fn metrics_fingerprint(report: &SagReport) -> String {
    let m = &report.metrics;
    let mut out = String::new();
    for s in &m.spans {
        out.push_str(&format!("span:{}:{};", s.name, s.count));
    }
    for (name, stage, v) in &m.counters {
        out.push_str(&format!("ctr:{name}:{stage:?}:{v};"));
    }
    for (name, stage, v) in &m.gauges {
        out.push_str(&format!("gauge:{name}:{stage:?}:{:016x};", v.to_bits()));
    }
    for (name, stage, h) in &m.histograms {
        out.push_str(&format!(
            "hist:{name}:{stage:?}:{}:{}:{}:{:?}:{:?};",
            h.count, h.sum, h.max, h.buckets, h.samples
        ));
    }
    out
}

fn arb_spec() -> impl Strategy<Value = (usize, f64, f64, u64)> {
    (
        4usize..20,                 // subscribers
        one_of([500.0, 800.0]),     // field size
        one_of([1e-9, 1e-4, 1e-3]), // N_max: higher values → more zones
        0u64..100_000,              // scenario seed
    )
}

prop! {
    /// The headline gate: over random scenarios spanning single-zone
    /// and many-zone partitions, a sequential and an 8-way parallel run
    /// produce byte-identical reports for both lower-tier solvers.
    #[cases(24)]
    fn reports_are_identical_across_thread_counts(input in arb_spec()) {
        let (users, field, nmax, seed) = input;
        let sc = ScenarioSpec {
            field_size: field,
            n_subscribers: users,
            n_base_stations: 2,
            snr_db: -15.0,
            // Short reach relative to the field so high N_max genuinely
            // fragments the subscribers into many zones.
            dist_range: (8.0, 14.0),
            nmax,
            bs_layout: BsLayout::Uniform,
            ..Default::default()
        }
        .build(seed);
        for solver in [LowerSolver::Samc, LowerSolver::IlpqcWithGreedyFallback] {
            let run = |threads: usize| {
                run_sag_with(&sc, SagPipelineConfig {
                    lower_solver: solver,
                    threads,
                    ..Default::default()
                })
            };
            match (run(1), run(8)) {
                (Ok(seq), Ok(par)) => {
                    prop_assert_eq!(
                        fingerprint(&seq),
                        fingerprint(&par),
                        "{:?}: threads=1 vs threads=8 diverged ({} zones)",
                        solver,
                        zone_partition(&sc).len()
                    );
                    prop_assert_eq!(
                        metrics_fingerprint(&seq),
                        metrics_fingerprint(&par),
                        "{:?}: collected metrics diverged across thread counts \
                         ({} zones)",
                        solver,
                        zone_partition(&sc).len()
                    );
                }
                // Errors must agree in kind; unbudgeted runs only fail
                // deterministically (infeasible geometry), so the whole
                // error must match.
                (Err(a), Err(b)) => prop_assert_eq!(a, b, "{:?}: errors diverged", solver),
                (a, b) => prop_assert!(
                    false,
                    "{:?}: one thread count failed where the other answered: \
                     seq={:?} par={:?}",
                    solver, a.is_ok(), b.is_ok()
                ),
            }
        }
    }

    /// The portfolio gate: racing two backends inside every zone worker
    /// must not break the engine's byte-identical contract. Arbitration
    /// is by backend rank, never by arrival order, so `threads = 1`,
    /// `threads = 8`, and a replay at the same thread count all commit
    /// the same answer bit for bit.
    #[cases(12)]
    fn portfolio_reports_are_identical_across_thread_counts(input in arb_spec()) {
        let (users, field, nmax, seed) = input;
        let sc = ScenarioSpec {
            field_size: field,
            n_subscribers: users,
            n_base_stations: 2,
            snr_db: -15.0,
            dist_range: (8.0, 14.0),
            nmax,
            bs_layout: BsLayout::Uniform,
            ..Default::default()
        }
        .build(seed);
        let run = |threads: usize| {
            run_sag_with(&sc, SagPipelineConfig {
                lower_solver: LowerSolver::IlpqcWithGreedyFallback,
                solver: SolverBuilder::portfolio(
                    SolverBackend::ExactIlp,
                    SolverBackend::LpRound,
                ),
                threads,
                ..Default::default()
            })
        };
        match (run(1), run(8), run(8)) {
            (Ok(seq), Ok(par), Ok(replay)) => {
                prop_assert_eq!(
                    fingerprint(&seq),
                    fingerprint(&par),
                    "portfolio: threads=1 vs threads=8 diverged ({} zones)",
                    zone_partition(&sc).len()
                );
                prop_assert_eq!(
                    fingerprint(&par),
                    fingerprint(&replay),
                    "portfolio: threads=8 replay diverged"
                );
                // The loser arm's partial work is kept out of buffered
                // recorders precisely so this holds under racing.
                prop_assert_eq!(
                    metrics_fingerprint(&seq),
                    metrics_fingerprint(&par),
                    "portfolio: collected metrics diverged across thread counts"
                );
                prop_assert_eq!(
                    metrics_fingerprint(&par),
                    metrics_fingerprint(&replay),
                    "portfolio: collected metrics diverged on replay"
                );
            }
            (Err(a), Err(b), Err(c)) => {
                prop_assert_eq!(&a, &b, "portfolio: errors diverged");
                prop_assert_eq!(&b, &c, "portfolio: replay error diverged");
            }
            (a, b, c) => prop_assert!(
                false,
                "portfolio: runs disagreed on feasibility: \
                 seq={:?} par={:?} replay={:?}",
                a.is_ok(), b.is_ok(), c.is_ok()
            ),
        }
    }
}

/// The partition itself is what makes parallelism safe — pin that the
/// generator configuration above really exercises multi-zone runs.
#[test]
fn high_nmax_scenarios_do_fragment_into_zones() {
    let sc = ScenarioSpec {
        field_size: 800.0,
        n_subscribers: 16,
        n_base_stations: 2,
        snr_db: -15.0,
        dist_range: (8.0, 14.0),
        nmax: 1e-3,
        bs_layout: BsLayout::Uniform,
        ..Default::default()
    }
    .build(1);
    assert!(
        zone_partition(&sc).len() >= 4,
        "generator no longer produces multi-zone scenarios"
    );
}
