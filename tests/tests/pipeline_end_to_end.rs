//! End-to-end integration: the full SAG pipeline over generated
//! scenarios, validating every cross-crate invariant the paper states.

use sag_core::coverage::is_feasible;
use sag_core::pro::{allocation_is_feasible, baseline_power, optimal_power};
use sag_core::sag::run_sag;
use sag_core::ucpo::baseline_upper_power;
use sag_core::RelayRole;
use sag_sim::gen::{BsLayout, ScenarioSpec};

fn spec(users: usize, field: f64) -> ScenarioSpec {
    ScenarioSpec {
        field_size: field,
        n_subscribers: users,
        n_base_stations: 4,
        snr_db: -15.0,
        ..Default::default()
    }
}

#[test]
fn pipeline_invariants_over_many_seeds() {
    let mut solved = 0;
    for seed in 0..10u64 {
        let sc = spec(12, 500.0).build(seed);
        let Ok(report) = run_sag(&sc) else { continue };
        solved += 1;

        // Lower tier: feasible coverage under uniform Pmax and under the
        // PRO powers.
        assert!(
            is_feasible(&sc, &report.coverage),
            "seed {seed}: infeasible coverage"
        );
        assert!(
            allocation_is_feasible(&sc, &report.coverage, &report.lower_power),
            "seed {seed}: PRO powers violate constraints"
        );

        // Power sandwich: optimal ≤ PRO ≤ baseline.
        let opt = optimal_power(&sc, &report.coverage).expect("feasible at Pmax");
        let base = baseline_power(&sc, &report.coverage);
        assert!(
            opt.total() <= report.lower_power.total() + 1e-9,
            "seed {seed}"
        );
        assert!(
            report.lower_power.total() <= base.total() + 1e-9,
            "seed {seed}"
        );

        // Upper tier: UCPO ≤ baseline, every chain hop within the relay's
        // effective feasible distance.
        let upper_base = baseline_upper_power(&sc, &report.plan);
        assert!(
            report.upper_power.total() <= upper_base.total() + 1e-9,
            "seed {seed}"
        );
        for chain in &report.plan.chains {
            let eff = report.plan.effective_distance[chain.child];
            assert!(
                chain.hop_length <= eff + 1e-9,
                "seed {seed}: hop {} exceeds effective distance {eff}",
                chain.hop_length
            );
        }

        // Every placed relay respects the power cap and sits in a role.
        for relay in report.relays() {
            assert!(relay.power >= 0.0 && relay.power <= sc.params.link.pmax() + 1e-9);
            assert!(matches!(
                relay.role,
                RelayRole::Coverage | RelayRole::Connectivity
            ));
        }
    }
    assert!(
        solved >= 8,
        "SAG should solve almost all −15 dB instances, got {solved}/10"
    );
}

#[test]
fn chains_terminate_at_base_stations() {
    for seed in [3u64, 17, 99] {
        let sc = ScenarioSpec {
            bs_layout: BsLayout::Corners,
            ..spec(10, 600.0)
        }
        .build(seed);
        let Ok(report) = run_sag(&sc) else { continue };
        let bs_positions = sc.base_station_positions();
        // Walk each coverage relay's chain through parents until a BS.
        for chain in &report.plan.chains {
            let parent_is_bs = bs_positions.iter().any(|b| b.approx_eq(chain.parent_pos));
            let parent_is_relay = report
                .coverage
                .relays
                .iter()
                .any(|r| r.approx_eq(chain.parent_pos));
            assert!(
                parent_is_bs || parent_is_relay,
                "seed {seed}: chain parent {} is neither BS nor coverage relay",
                chain.parent_pos
            );
        }
        // At least one chain must anchor directly at a BS.
        assert!(
            report
                .plan
                .chains
                .iter()
                .any(|c| bs_positions.iter().any(|b| b.approx_eq(c.parent_pos))),
            "seed {seed}: no chain reaches a base station"
        );
    }
}

#[test]
fn determinism_across_runs() {
    let sc = spec(15, 500.0).build(123);
    let a = run_sag(&sc).expect("feasible");
    let b = run_sag(&sc).expect("feasible");
    assert_eq!(a.coverage, b.coverage);
    assert_eq!(a.lower_power.powers, b.lower_power.powers);
    assert_eq!(a.power_summary(), b.power_summary());
}

#[test]
fn more_subscribers_never_fewer_relays_on_average() {
    // Weak monotonicity on averages over seeds (individual instances can
    // fluctuate): 24 subscribers need at least as many relays as 6.
    let avg = |users: usize| -> f64 {
        let mut total = 0.0;
        let mut n = 0;
        for seed in 0..5u64 {
            if let Ok(r) = run_sag(&spec(users, 500.0).build(seed)) {
                total += r.n_coverage_relays() as f64;
                n += 1;
            }
        }
        total / n as f64
    };
    assert!(avg(24) > avg(6));
}
