//! Workspace parity suite for the incremental interference ledger.
//!
//! The contract under test is the PR-3 tentpole invariant: after **any**
//! sequence of `add_relay` / `remove_relay` / `move_relay` / `set_power`
//! mutations, every `InterferenceLedger::snr` query agrees with the
//! brute-force recomputation (`sag_radio::snr::placement_snr`) to within
//! 1e-9 relative — with both sides treated as equal once they saturate
//! past [`SNR_SATURATED`]. A cutoff-equipped ledger must stay *sound*
//! (never report an SNR above the exact value), and a desynchronised
//! accumulator must surface as a typed [`DesyncError`], never as a
//! silently wrong answer.

use sag_geom::Point;
use sag_radio::ledger::SNR_SATURATED;
use sag_radio::snr::placement_snr;
use sag_radio::{InterferenceLedger, TwoRay};
use sag_testkit::prelude::*;

const FIELD: f64 = 600.0;

fn model() -> TwoRay {
    TwoRay::new(1.0, 3.0)
}

fn subscribers(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point::new(
                rng.gen_range(-0.5..0.5f64) * FIELD,
                rng.gen_range(-0.5..0.5f64) * FIELD,
            )
        })
        .collect()
}

/// One mutation drawn from the op-sequence strategy: `(kind, xf, yf, p)`
/// where `kind` selects add/remove/move/set-power and the fractions are
/// mapped onto field coordinates, active-slot choices, and powers.
type Op = (usize, f64, f64, f64);

fn op_strategy() -> impl Strategy<Value = Vec<Op>> {
    vec_of((0usize..4, 0.0..1.0f64, 0.0..1.0f64, 0.01..1.0f64), 1..40)
}

fn op_point(xf: f64, yf: f64) -> Point {
    Point::new((xf - 0.5) * FIELD, (yf - 0.5) * FIELD)
}

/// Applies `op` to `ledger`, keeping `ids` as the live relay-id roster.
/// Remove/move/set-power on an empty ledger degrade to an add, so every
/// sequence is valid by construction.
fn apply_op(ledger: &mut InterferenceLedger, ids: &mut Vec<usize>, op: Op) {
    let (kind, xf, yf, p) = op;
    if ids.is_empty() || kind == 0 {
        ids.push(ledger.add_relay(op_point(xf, yf), p));
        return;
    }
    let pick = ((xf * ids.len() as f64) as usize).min(ids.len() - 1);
    match kind {
        1 => {
            let id = ids.swap_remove(pick);
            ledger.remove_relay(id);
        }
        2 => ledger.move_relay(ids[pick], op_point(yf, xf)),
        _ => ledger.set_power(ids[pick], p),
    }
}

/// Exact SNR over the ledger's current relay set, via the brute helper.
fn brute_snr(ledger: &InterferenceLedger, ids: &[usize], j: usize, serving: usize) -> f64 {
    let positions: Vec<Point> = ids.iter().map(|&i| ledger.position(i)).collect();
    let powers: Vec<f64> = ids.iter().map(|&i| ledger.power(i)).collect();
    let serving_idx = ids
        .iter()
        .position(|&i| i == serving)
        .expect("serving id is in the roster");
    placement_snr(
        &model(),
        ledger.subscriber(j),
        &positions,
        &powers,
        serving_idx,
    )
}

fn saturated_or_close(a: f64, b: f64, rel: f64) -> bool {
    if a >= SNR_SATURATED || b >= SNR_SATURATED {
        a >= SNR_SATURATED && b >= SNR_SATURATED
    } else {
        (a - b).abs() <= rel * b.abs().max(1e-9)
    }
}

prop! {
    /// Headline parity: ledger SNR == brute SNR within 1e-9 after any
    /// random mutation sequence, for every (subscriber, serving) pair.
    #[cases(48)]
    fn ledger_matches_brute_after_any_op_sequence(
        ops in op_strategy(),
        n_subs in 1usize..8,
        seed in 0u64..10_000,
    ) {
        let subs = subscribers(n_subs, seed);
        let mut ledger = InterferenceLedger::new(model(), subs);
        let mut ids: Vec<usize> = Vec::new();
        for op in ops {
            apply_op(&mut ledger, &mut ids, op);
        }
        for j in 0..ledger.n_subscribers() {
            for &serving in &ids {
                let inc = ledger.snr(j, serving);
                let exact = brute_snr(&ledger, &ids, j, serving);
                prop_assert!(
                    saturated_or_close(inc, exact, 1e-9),
                    "parity broken at (j={j}, serving={serving}): ledger {inc} vs brute {exact}"
                );
            }
        }
    }

    /// A cutoff-equipped ledger stays sound under mutation: its residual
    /// bound can only *overstate* interference, so the reported SNR is
    /// never above the exact value (and saturation agrees upward).
    #[cases(32)]
    fn cutoff_ledger_is_sound_after_any_op_sequence(
        ops in op_strategy(),
        n_subs in 1usize..8,
        seed in 0u64..10_000,
        radius in 50.0..400.0f64,
    ) {
        let subs = subscribers(n_subs, seed);
        let mut ledger = InterferenceLedger::new(model(), subs).with_cutoff(radius);
        let mut ids: Vec<usize> = Vec::new();
        for op in ops {
            apply_op(&mut ledger, &mut ids, op);
        }
        for j in 0..ledger.n_subscribers() {
            for &serving in &ids {
                let bounded = ledger.snr(j, serving);
                let exact = brute_snr(&ledger, &ids, j, serving);
                prop_assert!(
                    bounded <= exact * (1.0 + 1e-9) || exact >= SNR_SATURATED,
                    "cutoff ledger unsound at (j={j}, serving={serving}): {bounded} > exact {exact}"
                );
            }
        }
    }

    /// Chaos hook: under `Fault::LedgerDesync` (a skewed accumulator),
    /// the oracle cross-check answers with a typed `DesyncError` — never
    /// a silently wrong SNR. `rebuild` restores a clean bill of health.
    #[cases(24)]
    fn skewed_accumulator_is_a_typed_error_not_a_wrong_answer(
        seed in 0u64..10_000,
        delta in one_of([1e-3, -1e-3, 1.0, -0.5]),
    ) {
        // The fault is scenario-invisible (see `apply_fault`): it is
        // realised directly on ledger state.
        let _fault = Fault::LedgerDesync;
        let subs = subscribers(4, seed);
        let mut ledger = InterferenceLedger::new(model(), subs);
        let a = ledger.add_relay(Point::new(-40.0, 0.0), 0.8);
        let b = ledger.add_relay(Point::new(55.0, 10.0), 0.6);
        prop_assert!(ledger.audit().is_ok());

        ledger.skew_accumulator(2, delta);
        let err = ledger.audit().expect_err("skew must fail the audit");
        prop_assert_eq!(err.subscriber, 2);
        prop_assert!(ledger.snr_checked(2, a).is_err());
        // Untouched subscribers still cross-check clean.
        prop_assert!(ledger.snr_checked(0, b).is_ok());

        ledger.rebuild();
        prop_assert!(ledger.audit().is_ok());
        prop_assert!(ledger.snr_checked(2, a).is_ok());
    }
}

#[test]
fn zero_interference_saturates_to_infinity() {
    let mut ledger = InterferenceLedger::new(model(), subscribers(3, 7));
    let only = ledger.add_relay(Point::new(10.0, -5.0), 0.5);
    for j in 0..ledger.n_subscribers() {
        assert_eq!(ledger.snr(j, only), f64::INFINITY);
        assert_eq!(brute_snr(&ledger, &[only], j, only), f64::INFINITY);
    }
}

#[test]
fn single_relay_after_churn_still_saturates() {
    let mut ledger = InterferenceLedger::new(model(), subscribers(3, 11));
    let keep = ledger.add_relay(Point::new(0.0, 0.0), 1.0);
    let drop_a = ledger.add_relay(Point::new(1.0, 1.0), 1.0);
    let drop_b = ledger.add_relay(Point::new(-2.0, 3.0), 0.3);
    ledger.remove_relay(drop_a);
    ledger.remove_relay(drop_b);
    // Catastrophic cancellation territory: the accumulator saw nearly
    // identical contributions added and removed. The guard must still
    // report a clean infinity for the lone survivor.
    for j in 0..ledger.n_subscribers() {
        assert_eq!(ledger.snr(j, keep), f64::INFINITY);
    }
}
