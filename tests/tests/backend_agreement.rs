//! Cross-backend agreement suite for the pluggable coverage solvers.
//!
//! Every [`sag_core::CoverageSolver`] backend answers the same
//! contract: a feasible cover of all subscribers by candidate relays.
//! The heuristics are allowed to place *more* relays than the exact
//! optimum, but never fewer (that would be a feasibility bug in the
//! exact solver) and never unboundedly more — the classic greedy
//! set-cover bound is `H(n) · OPT`, and on the small zones generated
//! here a factor of 3 is already generous.

use sag_testkit::prelude::*;

use sag_core::candidates::iac_candidates;
use sag_core::coverage::is_feasible;
use sag_core::model::Scenario;
use sag_core::solver::{CoverageSolver, ExactIlp, Greedy, LocalSearch, LpRound};
use sag_lp::Budget;
use sag_sim::gen::{BsLayout, ScenarioSpec};

fn arb_spec() -> impl Strategy<Value = (usize, f64, u64)> {
    (
        2usize..10,                    // subscribers: small, exactly solvable
        one_of([300.0, 500.0, 800.0]), // field size
        0u64..100_000,                 // scenario seed
    )
}

fn build(input: (usize, f64, u64)) -> Scenario {
    let (users, field, seed) = input;
    ScenarioSpec {
        field_size: field,
        n_subscribers: users,
        n_base_stations: 1,
        snr_db: -15.0,
        bs_layout: BsLayout::Uniform,
        ..Default::default()
    }
    .build(seed)
}

prop! {
    /// Every heuristic backend answers feasibly on zones the exact
    /// solver can certify, and within a bounded factor of its optimum.
    #[cases(24)]
    fn heuristics_agree_with_the_exact_optimum(input in arb_spec()) {
        let sc = build(input);
        let cands = iac_candidates(&sc);
        let budget = Budget::unlimited();

        let exact = match ExactIlp::default().solve(&sc, &cands, &budget) {
            Ok(ans) => ans,
            // Infeasible geometry rejects identically for everyone.
            Err(_) => {
                prop_assert!(
                    LpRound.solve(&sc, &cands, &budget).is_err(),
                    "lp_round answered a zone the exact solver rejects"
                );
                prop_assert!(
                    LocalSearch::default().solve(&sc, &cands, &budget).is_err(),
                    "local_search answered a zone the exact solver rejects"
                );
                prop_assert!(
                    Greedy.solve(&sc, &cands, &budget).is_err(),
                    "greedy answered a zone the exact solver rejects"
                );
                return;
            }
        };
        prop_assert!(exact.optimal, "unlimited budget must certify optimality");
        prop_assert!(is_feasible(&sc, &exact.solution));
        let opt = exact.solution.relays.len();

        for (name, answer) in [
            ("lp_round", LpRound.solve(&sc, &cands, &budget)),
            ("local_search", LocalSearch::default().solve(&sc, &cands, &budget)),
            ("greedy", Greedy.solve(&sc, &cands, &budget)),
        ] {
            let ans = match answer {
                Ok(a) => a,
                Err(e) => panic!("{name} failed on a feasible zone: {e}"),
            };
            prop_assert!(
                is_feasible(&sc, &ans.solution),
                "{name} produced an infeasible cover"
            );
            let got = ans.solution.relays.len();
            prop_assert!(
                got >= opt,
                "{name} beat the certified optimum ({got} < {opt}) — exact solver bug"
            );
            prop_assert!(
                got <= 3 * opt,
                "{name} placed {got} relays against an optimum of {opt}"
            );
        }
    }
}
