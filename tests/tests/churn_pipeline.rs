//! Churn engine integration suite: bounded degradation, end to end.
//!
//! The streaming-repair contract, asserted over *arbitrary* seeded
//! event streams rather than hand-picked ones: every trace either
//! fails with a typed [`SagError`] or leaves the engine audit-clean
//! and feasible, with a repaired placement whose relay count stays
//! within a bounded factor of a from-scratch SAMC re-solve of the same
//! live subscriber set. The chaos arms (starved budgets, mid-repair
//! worker panics, ledger desync injection) must degrade through the
//! same typed-error ladder, and the whole engine must be bit-for-bit
//! deterministic under replay.

use std::time::Duration;

use sag_testkit::prelude::*;

use sag_core::churn::{ChurnConfig, ChurnEngine, ChurnEvent, RepairRung};
use sag_core::coverage::is_feasible;
use sag_core::engine::inject_zone_worker_panic;
use sag_core::samc::samc;
use sag_core::SagError;
use sag_lp::Budget;
use sag_sim::experiments::churn::{churn_trace, ChurnTraceSpec};
use sag_sim::gen::ScenarioSpec;

/// Scenario + trace coordinates the properties draw from.
fn arb_input() -> impl Strategy<Value = (usize, f64, usize, bool, u64)> {
    (
        5usize..12,             // subscribers
        one_of([300.0, 500.0]), // field size
        8usize..32,             // trace events
        one_of([false, true]),  // boundary-hopping mobility?
        0u64..5_000,            // seed (scenario and trace)
    )
}

fn build(users: usize, field: f64, seed: u64) -> sag_core::model::Scenario {
    ScenarioSpec {
        n_subscribers: users,
        field_size: field,
        ..Default::default()
    }
    .build(seed)
}

fn trace_spec(n_events: usize, boundary_hops: bool) -> ChurnTraceSpec {
    ChurnTraceSpec {
        n_events,
        boundary_hops,
        ..Default::default()
    }
}

/// The post-trace invariant: audit-clean, feasible, and within a
/// bounded factor of the from-scratch solver on the same live set.
fn assert_bounded(eng: &ChurnEngine) {
    assert!(eng.audit().is_ok(), "ledger audit failed after trace");
    assert_eq!(eng.backlog(), 0, "final flush left a backlog");
    let live = eng.scenario().expect("no backlog ⇒ live scenario");
    let sol = eng.solution().expect("no backlog ⇒ placement");
    assert!(
        is_feasible(&live, &sol),
        "repaired placement violates coverage/SNR on the live set"
    );
    // Bounded degradation: incremental repair may be worse than a
    // global re-solve, but only by a constant factor (and it must not
    // be absurdly *better* either — that would mean the live sets
    // diverged).
    if let Ok(scratch) = samc(&live) {
        let (r, s) = (sol.n_relays(), scratch.n_relays());
        assert!(
            r <= 3 * s + 2 && s <= 3 * r + 2,
            "repaired {r} vs scratch {s} relays: outside the bounded-degradation envelope"
        );
    }
}

prop! {
    #[cases(16)]
    fn arbitrary_traces_end_typed_or_audit_clean(input in arb_input()) {
        let (users, field, n_events, hops, seed) = input;
        let sc = build(users, field, seed);
        let Ok(mut eng) = ChurnEngine::new(&sc, ChurnConfig::default()) else {
            return; // seed scenario infeasible: a typed error, contract held
        };
        let trace = churn_trace(&sc, &trace_spec(n_events, hops), seed ^ 0x9E37);
        match eng.run(&trace, None) {
            // A typed failure honours the contract on its own.
            Err(_) => {}
            Ok(()) => assert_bounded(&eng),
        }
    }
}

prop! {
    #[cases(10)]
    fn starved_budgets_defer_then_drain(input in arb_input()) {
        let (users, field, n_events, hops, seed) = input;
        let sc = build(users, field, seed);
        let Ok(mut eng) = ChurnEngine::new(&sc, ChurnConfig::default()) else {
            return;
        };
        // A zero deadline starves every event: each must degrade to the
        // Deferred rung (never panic, never block) until the forced
        // backlog flush; the final flush in `run` drains the rest.
        let trace = churn_trace(&sc, &trace_spec(n_events, hops), seed ^ 0x51DE);
        match eng.run(&trace, Some(Duration::ZERO)) {
            Err(_) => {}
            Ok(()) => {
                let deferred = eng.report().rung_count(RepairRung::Deferred);
                prop_assert!(
                    deferred > 0,
                    "zero per-event budget never hit the Deferred rung"
                );
                assert_bounded(&eng);
            }
        }
    }
}

#[test]
fn worker_panic_is_typed_and_retryable() {
    let sc = build(8, 300.0, 7);
    let mut eng = ChurnEngine::new(&sc, ChurnConfig::default()).expect("seed solve");
    let to = sag_geom::Point::new(
        sc.subscribers[0].position.x + 5.0,
        sc.subscribers[0].position.y,
    );
    let budget = Budget::unlimited();
    inject_zone_worker_panic(true);
    let outcome = eng.apply_event(ChurnEvent::SsMove { subscriber: 0, to }, &budget);
    inject_zone_worker_panic(false);
    assert!(
        matches!(outcome, Err(SagError::WorkerPanic { .. })),
        "mid-repair panic must surface as SagError::WorkerPanic, got {outcome:?}"
    );
    // The failed repair is retryable: the event seeds the deferred
    // backlog and a flush with the fault disarmed repairs cleanly.
    assert!(eng.backlog() > 0, "failed repair must re-queue its zones");
    eng.flush().expect("flush after disarming the fault");
    eng.audit().expect("audit clean after recovery");
    let live = eng.scenario().expect("no backlog");
    let sol = eng.solution().expect("no backlog");
    assert!(is_feasible(&live, &sol), "recovered placement infeasible");
}

#[test]
fn injected_ledger_skew_surfaces_as_typed_desync() {
    let sc = build(6, 300.0, 3);
    let mut eng = ChurnEngine::new(&sc, ChurnConfig::default()).expect("seed solve");
    // The delta dwarfs any received power at this field scale, so the
    // next audited event must trip the exact-oracle comparison.
    eng.skew_ledger(0, 1e12);
    let outcome = eng.apply_event(ChurnEvent::SsDepart { subscriber: 1 }, &Budget::unlimited());
    assert!(
        matches!(outcome, Err(SagError::LedgerDesync(_))),
        "skewed accumulator must surface as SagError::LedgerDesync, got {outcome:?}"
    );
}

#[test]
fn replayed_traces_are_bit_identical() {
    let sc = build(9, 500.0, 21);
    let trace = churn_trace(&sc, &trace_spec(24, true), 99);
    let run = || {
        let mut eng = ChurnEngine::new(&sc, ChurnConfig::default()).expect("seed solve");
        eng.run(&trace, None).expect("trace replays");
        let rungs: Vec<RepairRung> = eng.report().events.iter().map(|e| e.rung).collect();
        let relays = eng.solution().expect("no backlog").relays;
        (rungs, relays)
    };
    let (rungs_a, relays_a) = run();
    let (rungs_b, relays_b) = run();
    assert_eq!(rungs_a, rungs_b, "ladder rung sequence diverged on replay");
    assert_eq!(relays_a, relays_b, "relay placement diverged on replay");
}
