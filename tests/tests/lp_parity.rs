//! Differential LP test rig: the sparse revised simplex must agree with
//! the dense tableau oracle on every instance either can express, the
//! warm-started branch-and-bound must reach the same incumbents as cold
//! re-solves, the refactorization cadence must not change reported
//! objectives by a single bit, and `CscMatrix` construction must map
//! arbitrary garbage to a canonical matrix or a typed error — never a
//! panic.
//!
//! Scale the soak with `SAG_PROP_CASES` (CI runs 150).

use sag_core::candidates::iac_candidates;
use sag_lp::revised::solve_sparse_with_period;
use sag_lp::{
    push_backend_override, Budget, CscMatrix, IlpProblem, LpBackend, LpError, LpProblem, Relation,
    SparseStandardForm, SIMPLEX_TOL,
};
use sag_sim::gen::ScenarioSpec;
use sag_testkit::prelude::*;

/// Objective agreement tolerance between the two backends: they follow
/// different pivot paths, so exact equality is too strict, but both
/// claim [`SIMPLEX_TOL`]-accurate optima — a small multiple of it is
/// the honest bound.
const PARITY_TOL: f64 = 1e3 * SIMPLEX_TOL;

/// A seeded random LP with box-bounded variables (so it is never
/// unbounded): mixed Le/Ge/Eq rows, mixed-sign coefficients and rhs.
fn random_lp(rng: &mut Rng) -> LpProblem {
    let n = rng.gen_range(2usize..8);
    let m = rng.gen_range(1usize..9);
    let mut lp = LpProblem::minimize(n);
    let obj: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..5.0f64)).collect();
    lp.set_objective(&obj);
    for v in 0..n {
        lp.set_bounds(v, 0.0, rng.gen_range(1.0..20.0f64));
    }
    for _ in 0..m {
        let mut vars: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut vars);
        vars.truncate(rng.gen_range(1usize..=n.min(4)));
        let coeffs: Vec<(usize, f64)> = vars
            .into_iter()
            .map(|v| (v, rng.gen_range(-4.0..4.0f64)))
            .collect();
        let rel = match rng.gen_range(0usize..3) {
            0 => Relation::Le,
            1 => Relation::Ge,
            _ => Relation::Eq,
        };
        lp.add_constraint(&coeffs, rel, rng.gen_range(-5.0..15.0f64));
    }
    lp
}

/// Solves `lp` under both backends and asserts status + objective
/// parity.
fn assert_backend_parity(lp: &LpProblem, what: &str) {
    let sparse = {
        let _g = push_backend_override(Some(LpBackend::Sparse));
        lp.solve()
    };
    let dense = {
        let _g = push_backend_override(Some(LpBackend::Dense));
        lp.solve()
    };
    match (sparse, dense) {
        (Ok(s), Ok(d)) => {
            let scale = 1.0 + d.objective.abs();
            prop_assert!(
                (s.objective - d.objective).abs() <= PARITY_TOL * scale,
                "{what}: sparse {} vs dense {}",
                s.objective,
                d.objective
            );
        }
        (Err(LpError::Infeasible), Err(LpError::Infeasible)) => {}
        (Err(LpError::Unbounded), Err(LpError::Unbounded)) => {}
        (s, d) => prop_assert!(
            false,
            "{what}: status disagreement sparse={s:?} dense={d:?}"
        ),
    }
}

prop! {
    /// Random LPs: both backends report the same status, and the same
    /// objective when optimal.
    #[cases(64)]
    fn sparse_matches_dense_on_random_lps(seed in 0u64..1_000_000) {
        let mut rng = Rng::seed_from_u64(seed);
        let lp = random_lp(&mut rng);
        assert_backend_parity(&lp, "random LP");
    }

    /// Real ILPQC set-cover relaxations: the exact coverage-row LP the
    /// branch-and-bound uses for its lower bounds, built from generated
    /// scenarios, must agree across backends.
    #[cases(24)]
    fn cover_lp_parity_on_ilpqc_instances(seed in 0u64..100_000, n_subs in 3usize..10) {
        let sc = ScenarioSpec {
            field_size: 400.0,
            n_subscribers: n_subs,
            snr_db: -15.0,
            ..Default::default()
        }
        .build(seed);
        let cands = iac_candidates(&sc);
        prop_assume!(!cands.is_empty());
        let mut lp = LpProblem::minimize(cands.len());
        lp.set_objective(&vec![1.0; cands.len()]);
        for v in 0..cands.len() {
            lp.set_bounds(v, 0.0, 1.0);
        }
        let mut coverable = true;
        for sub in &sc.subscribers {
            let circle = sub.feasible_circle();
            let coeffs: Vec<(usize, f64)> = (0..cands.len())
                .filter(|&c| circle.contains(cands[c]))
                .map(|c| (c, 1.0))
                .collect();
            if coeffs.is_empty() {
                coverable = false;
                break;
            }
            lp.add_constraint(&coeffs, Relation::Ge, 1.0);
        }
        prop_assume!(coverable);
        assert_backend_parity(&lp, "cover LP");
    }

    /// Warm-started branch-and-bound reaches exactly the incumbent a
    /// cold-started search proves optimal: warm starts are a speedup,
    /// never a different answer.
    #[cases(32)]
    fn warm_bb_matches_cold_incumbent(seed in 0u64..1_000_000) {
        let build = |warm: bool| {
            let mut rng = Rng::seed_from_u64(seed);
            let n = rng.gen_range(4usize..9);
            let mut lp = LpProblem::minimize(n);
            let obj: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..4.0f64)).collect();
            lp.set_objective(&obj);
            let m = rng.gen_range(2usize..7);
            for _ in 0..m {
                let mut vars: Vec<usize> = (0..n).collect();
                rng.shuffle(&mut vars);
                vars.truncate(rng.gen_range(2usize..=n.min(4)));
                let coeffs: Vec<(usize, f64)> =
                    vars.into_iter().map(|v| (v, 1.0)).collect();
                lp.add_constraint(&coeffs, Relation::Ge, 1.0);
            }
            let mut ilp = IlpProblem::new(lp);
            for v in 0..n {
                ilp.set_binary(v);
            }
            ilp.set_warm_start(warm);
            ilp.solve()
        };
        let cold = build(false).expect("cover ILPs are always feasible");
        let warm = build(true).expect("cover ILPs are always feasible");
        prop_assert!(
            (cold.objective - warm.objective).abs() <= PARITY_TOL * (1.0 + cold.objective.abs()),
            "cold {} vs warm {}",
            cold.objective,
            warm.objective
        );
    }

    /// Refactorization cadence is invisible: periods 1, 8 and 64 must
    /// report bit-identical objectives, because extraction always goes
    /// through a fresh factorization of the final basis.
    #[cases(32)]
    fn refactor_cadence_is_bit_stable(seed in 0u64..1_000_000) {
        let mut rng = Rng::seed_from_u64(seed);
        let m = rng.gen_range(2usize..7);
        let n = m + rng.gen_range(1usize..8);
        let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
        for j in 0..n {
            for i in 0..m {
                if rng.gen_bool(0.5) {
                    triplets.push((i, j, rng.gen_range(-2.0..2.0f64)));
                }
            }
        }
        let a = CscMatrix::from_triplets(m, n, &triplets).expect("in-range triplets");
        // b = A·x0 for a nonnegative x0 keeps the instance feasible;
        // nonnegative costs keep it bounded.
        let x0: Vec<f64> = (0..n)
            .map(|_| if rng.gen_bool(0.5) { rng.gen_range(0.0..3.0f64) } else { 0.0 })
            .collect();
        let mut b = vec![0.0; m];
        for (j, &xj) in x0.iter().enumerate() {
            if xj != 0.0 {
                a.axpy_col(j, xj, &mut b);
            }
        }
        let c: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..4.0f64)).collect();
        let sf = SparseStandardForm { a, b, c };
        let budget = Budget::unlimited();
        let r1 = solve_sparse_with_period(&sf, &budget, 1);
        let r8 = solve_sparse_with_period(&sf, &budget, 8);
        let r64 = solve_sparse_with_period(&sf, &budget, 64);
        match (r1, r8, r64) {
            (Ok(s1), Ok(s8), Ok(s64)) => {
                prop_assert_eq!(
                    s1.objective.to_bits(),
                    s8.objective.to_bits(),
                    "period 1 {} vs 8 {}",
                    s1.objective,
                    s8.objective
                );
                prop_assert_eq!(
                    s8.objective.to_bits(),
                    s64.objective.to_bits(),
                    "period 8 {} vs 64 {}",
                    s8.objective,
                    s64.objective
                );
            }
            (Err(_), Err(_), Err(_)) => {} // consistently unsolvable
            other => prop_assert!(false, "cadence changed the status: {other:?}"),
        }
    }

    /// `CscMatrix::from_triplets` under garbage: out-of-range indices,
    /// duplicates, out-of-order rows, empty columns and byte-flipped
    /// values yield a canonical matrix or a typed [`sag_lp::SparseError`]
    /// — never a panic, never a non-canonical matrix.
    #[cases(96)]
    fn csc_from_triplets_never_panics(seed in 0u64..1_000_000, n_trip in 0usize..40) {
        let mut rng = Rng::seed_from_u64(seed);
        let nrows = rng.gen_range(0usize..6);
        let ncols = rng.gen_range(0usize..6);
        let triplets: Vec<(usize, usize, f64)> = (0..n_trip)
            .map(|_| {
                let r = rng.gen_range(0usize..8); // may exceed nrows
                let c = rng.gen_range(0usize..8); // may exceed ncols
                let mut v = rng.gen_range(-3.0..3.0f64);
                if rng.gen_bool(0.25) {
                    // Byte-flip: may turn the value into ±∞, NaN, a
                    // subnormal, or just a slightly different float.
                    v = f64::from_bits(v.to_bits() ^ (1u64 << rng.gen_range(0u32..64)));
                }
                (r, c, v)
            })
            .collect();
        match CscMatrix::from_triplets(nrows, ncols, &triplets) {
            Ok(mat) => {
                prop_assert_eq!(mat.nrows(), nrows);
                prop_assert_eq!(mat.ncols(), ncols);
                prop_assert!(mat.nnz() <= triplets.len());
                for j in 0..ncols {
                    let (rows, vals) = mat.col(j);
                    prop_assert!(
                        rows.windows(2).all(|w| w[0] < w[1]),
                        "column {j} rows not strictly increasing: {rows:?}"
                    );
                    prop_assert!(
                        vals.iter().all(|v| v.is_finite() && *v != 0.0),
                        "column {j} kept a zero or non-finite value: {vals:?}"
                    );
                }
            }
            Err(e) => {
                // Typed rejection; the Display impl must name the defect.
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }
}
