//! Sweep harness chaos suite: failure surfacing at integration level.
//!
//! The sweep runner's contract is that one bad run never poisons a
//! campaign: a panic (or wrong metric arity) inside `eval` is isolated
//! to its cell, surfaced in [`CellStats::failed_runs`], and every other
//! cell aggregates normally. The unit tests in `sag-sim` exercise this
//! with toy closures; here the crash happens inside a real
//! scenario-build-and-solve eval, mid-sweep, on worker threads. The
//! second half pins the seed schedule: across ≥1000 runs per x
//! position every run must observe a distinct seed.

use std::collections::HashSet;
use std::sync::Mutex;

use sag_core::coverage::is_feasible;
use sag_core::samc::samc;
use sag_sim::gen::ScenarioSpec;
use sag_sim::runner::{sweep_multi, SweepConfig};

fn spec(users: usize) -> ScenarioSpec {
    ScenarioSpec {
        n_subscribers: users,
        field_size: 300.0,
        ..Default::default()
    }
}

#[test]
fn mid_sweep_scenario_panic_is_isolated_and_counted() {
    let config = SweepConfig {
        runs: 3,
        base_seed: 11,
        threads: 4,
    };
    let xs = [5.0, 7.0, 9.0];
    // Poison exactly one run of the middle cell; every other run does a
    // full scenario build + SAMC solve.
    let poison_seed = config.seed(1, 1);
    let series = sweep_multi(&xs, 2, config, |users, seed| {
        let sc = spec(users as usize).build(seed);
        assert_ne!(seed, poison_seed, "injected mid-sweep crash (seed {seed})");
        match samc(&sc) {
            Ok(sol) => {
                let okay = is_feasible(&sc, &sol);
                vec![Some(sol.n_relays() as f64), Some(okay as usize as f64)]
            }
            Err(_) => vec![None, None],
        }
    });
    assert_eq!(series.len(), 2);
    for cells in &series {
        assert_eq!(cells.len(), xs.len());
        // The poisoned cell: one crash counted, the other runs intact.
        assert_eq!(cells[1].failed_runs, 1, "crash not surfaced: {cells:?}");
        assert_eq!(cells[1].total_runs, 3);
        assert!(cells[1].feasible_runs <= 2);
        // Neighbouring cells are untouched by the crash.
        for i in [0usize, 2] {
            assert_eq!(cells[i].failed_runs, 0, "crash leaked into cell {i}");
            assert_eq!(cells[i].total_runs, 3);
        }
    }
    // The solve metrics of the healthy cells still aggregate.
    assert!(series[0][0].mean.is_some(), "healthy cell lost its mean");
    assert_eq!(series[1][0].mean, Some(1.0), "feasibility metric lost");
}

#[test]
fn wrong_metric_arity_counts_as_failed_run() {
    let config = SweepConfig {
        runs: 2,
        base_seed: 5,
        threads: 2,
    };
    let bad_seed = config.seed(0, 0);
    let series = sweep_multi(&[4.0], 2, config, |users, seed| {
        let sc = spec(users as usize).build(seed);
        if seed == bad_seed {
            // An eval that forgot a metric: must be a failed run, not
            // a silent misalignment of the series.
            return vec![Some(1.0)];
        }
        vec![Some(sc.subscribers.len() as f64), Some(1.0)]
    });
    for cells in &series {
        assert_eq!(cells[0].failed_runs, 1);
        assert_eq!(cells[0].total_runs, 2);
        assert_eq!(cells[0].feasible_runs, 1);
    }
}

#[test]
fn seed_schedule_is_collision_free_across_1000_plus_runs() {
    // Observed from *inside* the sweep: every (x, run) eval must see a
    // seed no other eval saw, at 1200 runs per x — past the historical
    // fixed stride of 1000, where a narrower schedule would wrap into
    // the next x position's band.
    let config = SweepConfig {
        runs: 1200,
        base_seed: 1,
        threads: 8,
    };
    let xs = [0.0, 1.0, 2.0, 3.0];
    let seen: Mutex<HashSet<u64>> = Mutex::new(HashSet::new());
    let series = sweep_multi(&xs, 1, config, |_x, seed| {
        let fresh = seen.lock().expect("seed set lock").insert(seed);
        vec![if fresh { Some(1.0) } else { None }]
    });
    let seen = seen.into_inner().expect("seed set lock");
    assert_eq!(
        seen.len(),
        xs.len() * config.runs,
        "seed collision across the sweep"
    );
    for cell in &series[0] {
        assert_eq!(cell.feasible_runs, config.runs, "a run saw a reused seed");
        assert_eq!(cell.failed_runs, 0);
    }
    // The schedule also stays ordered: the last run of one x position
    // never reaches into the next position's band.
    for i in 0..xs.len() - 1 {
        assert!(config.seed(i, config.runs - 1) < config.seed(i + 1, 0));
    }
}
