//! Failure injection: the library must fail loudly and precisely, never
//! return a bogus placement.

use sag_core::coverage::{assign_nearest, is_feasible, CoverageSolution};
use sag_core::ilpqc::{solve_ilpqc, IlpqcConfig};
use sag_core::model::{BaseStation, NetworkParams, Scenario, Subscriber};
use sag_core::pro::optimal_power;
use sag_core::sag::run_sag;
use sag_core::samc::samc;
use sag_core::SagError;
use sag_geom::{Point, Rect};
use sag_integration::scenario;

#[test]
fn empty_scenarios_rejected_at_construction() {
    let field = Rect::centered_square(100.0);
    let params = NetworkParams::default();
    assert_eq!(
        Scenario::new(field, vec![], vec![BaseStation::new(Point::ORIGIN)], params).unwrap_err(),
        SagError::NoSubscribers
    );
    assert_eq!(
        Scenario::new(
            field,
            vec![Subscriber::new(Point::ORIGIN, 10.0)],
            vec![],
            params
        )
        .unwrap_err(),
        SagError::NoBaseStations
    );
}

#[test]
fn unreachable_snr_is_infeasible_not_wrong() {
    // The double-cluster trap: shared relays pinned ≈ 6 from their
    // subscribers with the other cluster ≈ 12 away; +20 dB is impossible.
    let sc = scenario(
        500.0,
        &[
            (0.0, -6.0, 6.5),
            (0.0, 6.0, 6.5),
            (12.0, -6.0, 6.5),
            (12.0, 6.0, 6.5),
        ],
        &[(200.0, 200.0)],
        20.0,
    );
    match samc(&sc) {
        Err(SagError::Infeasible(stage)) => assert!(stage.contains("samc")),
        Ok(sol) => panic!("samc returned a 'solution' {sol:?} to an impossible instance"),
        Err(e) => panic!("wrong error {e}"),
    }
    // The full pipeline propagates the same error.
    assert!(matches!(run_sag(&sc), Err(SagError::Infeasible(_))));
}

#[test]
fn ilpqc_with_empty_candidates_is_infeasible() {
    let sc = scenario(500.0, &[(0.0, 0.0, 30.0)], &[(100.0, 100.0)], -15.0);
    assert!(matches!(
        solve_ilpqc(&sc, &[], IlpqcConfig::default()),
        Err(SagError::Infeasible(_))
    ));
}

#[test]
fn assignment_rejects_uncoverable_positions() {
    let sc = scenario(500.0, &[(0.0, 0.0, 30.0)], &[(100.0, 100.0)], -15.0);
    assert!(assign_nearest(&sc, &[Point::new(200.0, 0.0)]).is_none());
    assert!(assign_nearest(&sc, &[]).is_none());
}

#[test]
fn feasibility_check_rejects_corrupted_solutions() {
    let sc = scenario(
        500.0,
        &[(0.0, 0.0, 30.0), (5.0, 0.0, 30.0)],
        &[(100.0, 100.0)],
        -15.0,
    );
    let good = samc(&sc).unwrap();
    assert!(is_feasible(&sc, &good));
    // Corrupt the assignment.
    let mut bad = good.clone();
    bad.assignment[0] = 999;
    assert!(!is_feasible(&sc, &bad));
    // Move the relay out of range.
    let mut far = good.clone();
    far.relays[0] = Point::new(400.0, 400.0);
    assert!(!is_feasible(&sc, &far));
}

#[test]
fn optimal_power_detects_power_capped_infeasibility() {
    // An assignment that forces a relay to serve a subscriber from the
    // very edge of its circle while a strong interferer sits nearby:
    // the minimal fixed point exceeds Pmax.
    let sc = scenario(
        500.0,
        &[(0.0, 0.0, 30.0), (63.0, 0.0, 30.0), (31.0, 0.0, 30.0)],
        &[(200.0, 200.0)],
        6.0, // +6 dB → β ≈ 3.98
    );
    // Relay 0 serves SS0 from the circle edge (coverage alone needs
    // Pmax); relay 1 must also run at Pmax to reach SS1 at ITS edge, and
    // sits only 33 from SS0. SNR at SS0 needs
    // P0·30⁻³ ≥ β·Pmax·33⁻³ → P0 ≥ 2.99·Pmax: impossible.
    let sol = CoverageSolution {
        relays: vec![Point::new(-30.0, 0.0), Point::new(33.0, 0.0)],
        assignment: vec![0, 1, 1],
    };
    assert!(matches!(
        optimal_power(&sc, &sol),
        Err(SagError::Infeasible(_))
    ));
}

#[test]
fn error_messages_name_their_stage() {
    let e = SagError::Infeasible("ilpqc: node limit exhausted without a feasible cover".into());
    let msg = e.to_string();
    assert!(msg.contains("ilpqc"));
    assert!(msg.contains("no feasible solution"));
}
