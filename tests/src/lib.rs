//! Shared helpers for the cross-crate integration tests.
//!
//! The real tests live in `tests/tests/*.rs`; this library only hosts
//! small builders they share.

use sag_core::model::{BaseStation, NetworkParams, Scenario, Subscriber};
use sag_geom::{Point, Rect};
use sag_radio::{units::Db, LinkBudget};

/// Builds a deterministic hand-laid scenario: `subs` as
/// `(x, y, distance_req)`, `bss` as `(x, y)`, on a centered square field.
pub fn scenario(field: f64, subs: &[(f64, f64, f64)], bss: &[(f64, f64)], snr_db: f64) -> Scenario {
    Scenario::new(
        Rect::centered_square(field),
        subs.iter()
            .map(|&(x, y, d)| Subscriber::new(Point::new(x, y), d))
            .collect(),
        bss.iter()
            .map(|&(x, y)| BaseStation::new(Point::new(x, y)))
            .collect(),
        NetworkParams::new(
            LinkBudget::builder().snr_threshold(Db::new(snr_db)).build(),
            1e-9,
        ),
    )
    .expect("integration scenarios are non-empty")
}

#[cfg(test)]
mod tests {
    #[test]
    fn helper_builds() {
        let sc = super::scenario(500.0, &[(0.0, 0.0, 30.0)], &[(100.0, 100.0)], -15.0);
        assert_eq!(sc.n_subscribers(), 1);
    }
}
