//! Shared helpers for the cross-crate integration tests.
//!
//! The real tests live in `tests/tests/*.rs`; this library only hosts
//! small builders they share plus the scenario-level chaos mutators
//! that realise `sag_testkit::chaos::Fault` against concrete domain
//! types (the testkit itself stays zero-dependency, so it cannot name
//! `Scenario`).

use sag_core::model::{BaseStation, NetworkParams, Scenario, Subscriber};
use sag_geom::{Point, Rect};
use sag_radio::{units::Db, LinkBudget};
use sag_testkit::chaos::Fault;
use sag_testkit::rng::Rng;

/// Builds a deterministic hand-laid scenario: `subs` as
/// `(x, y, distance_req)`, `bss` as `(x, y)`, on a centered square field.
pub fn scenario(field: f64, subs: &[(f64, f64, f64)], bss: &[(f64, f64)], snr_db: f64) -> Scenario {
    Scenario::new(
        Rect::centered_square(field),
        subs.iter()
            .map(|&(x, y, d)| Subscriber::new(Point::new(x, y), d))
            .collect(),
        bss.iter()
            .map(|&(x, y)| BaseStation::new(Point::new(x, y)))
            .collect(),
        NetworkParams::new(
            LinkBudget::builder().snr_threshold(Db::new(snr_db)).build(),
            1e-9,
        ),
    )
    .expect("integration scenarios are non-empty")
}

/// Applies one structural [`Fault`] to `sc` in place, using `rng` to
/// pick which field gets poisoned. The mutated scenario is *expected*
/// to be adversarial: callers assert the pipeline answers with a typed
/// error or a still-valid report, never a panic.
pub fn apply_fault(sc: &mut Scenario, fault: Fault, rng: &mut Rng) {
    match fault {
        Fault::NanInject => poison_scalar(sc, rng, f64::NAN),
        Fault::InfInject => {
            let v = if rng.gen_bool(0.5) {
                f64::INFINITY
            } else {
                f64::NEG_INFINITY
            };
            poison_scalar(sc, rng, v);
        }
        Fault::ZeroWidthRegion => {
            let c = sc.field.center();
            sc.field = if rng.gen_bool(0.5) {
                // Zero area entirely.
                Rect::from_corners(c, c)
            } else {
                // Zero width, finite height.
                Rect::from_corners(
                    Point::new(c.x, sc.field.min().y),
                    Point::new(c.x, sc.field.max().y),
                )
            };
        }
        // Struct literals, not `BaseStation::new`: the source position
        // may already be poisoned by a stacked fault, and the checked
        // constructor would panic inside the *mutator*.
        Fault::CoincidentStations => {
            let n = sc.base_stations.len();
            let src = rng.gen_range(0usize..n);
            let dup = sc.base_stations[src];
            sc.base_stations.push(dup);
        }
        Fault::ColinearStations => {
            let base = sc.base_stations[0].position;
            for k in 1..=3u32 {
                let d = f64::from(k);
                sc.base_stations.push(BaseStation {
                    position: Point::new(base.x + d, base.y + d),
                });
            }
        }
        Fault::ExtremeThreshold => {
            let link = &sc.params.link;
            let mut b = LinkBudget::builder();
            b.model(*link.model())
                .noise(link.noise())
                .bandwidth(link.bandwidth());
            match rng.gen_range(0usize..3) {
                // An SNR bar nothing can clear.
                0 => b.snr_threshold(Db::new(500.0)).max_power(link.pmax()),
                // A power cap that silences every transmitter.
                1 => b.snr_threshold(link.beta_db()).max_power(f64::MIN_POSITIVE),
                // An infinite cap: the builder's `pmax > 0` gate admits
                // it, only `Scenario::validate` catches it.
                _ => b.snr_threshold(link.beta_db()).max_power(f64::INFINITY),
            };
            sc.params.link = b.build();
        }
        Fault::AdversarialCluster => {
            // Pile every subscriber into a vanishingly small disc with
            // near-zero coverage radii: legal floats, brutal geometry.
            for (i, s) in sc.subscribers.iter_mut().enumerate() {
                s.position = Point::new(1e-9 * i as f64, 0.0);
                s.distance_req = f64::MIN_POSITIVE * (i + 1) as f64;
            }
        }
        // A ledger desync is a *state* fault, not a scenario fault: it
        // is injected with `InterferenceLedger::skew_accumulator` on a
        // live ledger, so there is nothing to mutate here. The pipeline
        // run under this fault exercises the unfaulted scenario, and
        // the ledger-level suite (`tests/ledger_parity.rs`) asserts the
        // oracle cross-check reports it as a typed `DesyncError`.
        Fault::LedgerDesync => {}
        // An obs-sink failure is likewise state, not scenario: it is
        // realised by installing a `sag_obs::JsonlSink` over a failing
        // writer (see `tests/obs_pipeline.rs`), which must drop events
        // and count them without ever changing the report.
        Fault::ObsSinkFail => {}
        // A dying zone worker is state, not scenario: it is armed with
        // `sag_core::engine::inject_zone_worker_panic` around a run
        // (see `tests/chaos_pipeline.rs`), which must surface a typed
        // `SagError::WorkerPanic` instead of hanging the merge.
        Fault::ZoneWorkerPanic => {}
        // An event burst is churn-driver state, not scenario: it is
        // realised by delivering a batch of events under an
        // already-expired `Budget` (see `tests/churn_pipeline.rs`),
        // which must bottom out in defer-and-batch and drain cleanly on
        // the final flush.
        Fault::ChurnBurst => {}
        // A boundary hop is churn-trace state, not scenario: it is
        // realised by generating `SsMove` events whose destination
        // crosses an interference-zone boundary (see
        // `tests/churn_pipeline.rs`), which must keep cross-zone
        // repairs audit-clean.
        Fault::ChurnBoundaryHop => {}
        // A basis desync is solver state, not scenario: it is armed
        // with `sag_lp::revised::inject_lu_skew` around a solve (see
        // `tests/chaos_pipeline.rs`), which must either recover via
        // refactorization or surface a typed `LpError::Numerical` —
        // never a silently wrong objective.
        Fault::LpBasisDesync => {}
        // A dying portfolio loser is solver state, not scenario: it is
        // armed with `sag_core::SolverBuilder::with_loser_fault` on a
        // portfolio-mode run (see `tests/chaos_pipeline.rs`), which
        // must still commit the winner's clean answer and surface the
        // loss only as the counted `portfolio.loser_panic` event.
        Fault::PortfolioLoserPanic => {}
    }
}

fn poison_scalar(sc: &mut Scenario, rng: &mut Rng, v: f64) {
    match rng.gen_range(0usize..4) {
        0 => {
            let i = rng.gen_range(0usize..sc.subscribers.len());
            sc.subscribers[i].position.x = v;
        }
        1 => {
            let i = rng.gen_range(0usize..sc.subscribers.len());
            sc.subscribers[i].distance_req = v;
        }
        2 => {
            let i = rng.gen_range(0usize..sc.base_stations.len());
            sc.base_stations[i].position.y = v;
        }
        _ => sc.params.nmax = v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helper_builds() {
        let sc = super::scenario(500.0, &[(0.0, 0.0, 30.0)], &[(100.0, 100.0)], -15.0);
        assert_eq!(sc.n_subscribers(), 1);
    }

    #[test]
    fn every_fault_applies_without_panicking() {
        let mut rng = Rng::seed_from_u64(9);
        for fault in Fault::all() {
            for _ in 0..50 {
                let mut sc = super::scenario(500.0, &[(0.0, 0.0, 30.0)], &[(100.0, 100.0)], -15.0);
                apply_fault(&mut sc, fault, &mut rng);
            }
        }
    }

    #[test]
    fn non_finite_faults_fail_validation() {
        let mut rng = Rng::seed_from_u64(11);
        for fault in [Fault::NanInject, Fault::InfInject, Fault::ZeroWidthRegion] {
            let mut sc = super::scenario(500.0, &[(0.0, 0.0, 30.0)], &[(100.0, 100.0)], -15.0);
            apply_fault(&mut sc, fault, &mut rng);
            assert!(sc.validate().is_err(), "{fault:?} should not validate");
        }
    }
}
